//! Shared round-execution types and helpers used by every scheme engine.
//!
//! One "round" is one distributed matrix–vector product: broadcast an input
//! vector, have every worker multiply it with its (coded or raw) block, and
//! reconstruct the full product at the master. The engines differ in how many
//! results they wait for and how they establish integrity; the bookkeeping —
//! who was used, who straggled, what each phase cost — is common and lives
//! here.

use std::sync::Arc;

use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::{mat_vec, Matrix};
use avcc_sim::executor::WorkerOutcome;
use avcc_sim::metrics::{IterationCosts, OpCounts};
use avcc_sim::NetworkModel;

/// One worker's share of a dispatched round: the (coded or raw) matrix block
/// the worker holds plus the broadcast input vector.
///
/// Both halves sit behind [`Arc`]s, so the task is cheap to clone and `Send`
/// — an engine can hand the same round out to a [`crate::driver`]'s serial
/// executor or to a multi-job fleet scheduler that runs it on another
/// thread, without the task borrowing the engine (the master needs the
/// engine back, mutably, to collect the results while the tasks are still
/// in flight).
#[derive(Debug, Clone)]
pub struct RoundTask<M: PrimeModulus> {
    /// The worker this task is addressed to.
    pub worker: usize,
    matrix: Arc<Matrix<Fp<M>>>,
    input: Arc<Vec<Fp<M>>>,
}

impl<M: PrimeModulus> RoundTask<M> {
    /// A task multiplying `matrix` by `input` at `worker`.
    pub fn new(worker: usize, matrix: Arc<Matrix<Fp<M>>>, input: Arc<Vec<Fp<M>>>) -> Self {
        RoundTask {
            worker,
            matrix,
            input,
        }
    }

    /// Runs the worker's computation: the block–vector product.
    pub fn run(&self) -> Vec<Fp<M>> {
        mat_vec(&self.matrix, &self.input)
    }

    /// Rows of this worker's block — the length of the payload [`RoundTask::run`]
    /// produces.
    pub fn output_rows(&self) -> usize {
        self.matrix.rows()
    }

    /// First-order MAC count of this task's product.
    pub fn macs(&self) -> u64 {
        (self.matrix.rows() * self.matrix.cols()) as u64
    }

    /// The worker's (coded or raw) matrix block, behind the engine's `Arc`.
    ///
    /// The shared handle (rather than the matrix itself) is exposed so a wire
    /// bridge can both serialize the block *and* fingerprint it by pointer
    /// identity — two dispatches over the same encoded dataset share the
    /// `Arc`, so an unchanged fingerprint proves the blocks already installed
    /// on remote workers are still current.
    pub fn matrix(&self) -> &Arc<Matrix<Fp<M>>> {
        &self.matrix
    }

    /// The broadcast input vector of this task.
    pub fn input(&self) -> &[Fp<M>] {
        &self.input
    }
}

/// One worker's share of a dispatched *batched* round: the same (coded or
/// raw) block applied to `m` broadcast input vectors at once — the
/// multi-function shape `X̃·w₁ … X̃·wₘ` that amortizes a single encode.
///
/// Like [`RoundTask`], both halves sit behind [`Arc`]s so the task is cheap
/// to clone and `Send`.
#[derive(Debug, Clone)]
pub struct BatchRoundTask<M: PrimeModulus> {
    /// The worker this task is addressed to.
    pub worker: usize,
    matrix: Arc<Matrix<Fp<M>>>,
    inputs: Arc<Vec<Vec<Fp<M>>>>,
}

impl<M: PrimeModulus> BatchRoundTask<M> {
    /// A task multiplying `matrix` by each of `inputs` at `worker`.
    pub fn new(worker: usize, matrix: Arc<Matrix<Fp<M>>>, inputs: Arc<Vec<Vec<Fp<M>>>>) -> Self {
        BatchRoundTask {
            worker,
            matrix,
            inputs,
        }
    }

    /// Runs the worker's computation: one block–vector product per function,
    /// in function order.
    pub fn run(&self) -> Vec<Vec<Fp<M>>> {
        self.inputs
            .iter()
            .map(|input| mat_vec(&self.matrix, input))
            .collect()
    }

    /// Number of functions (input vectors) in the batch.
    pub fn functions(&self) -> usize {
        self.inputs.len()
    }

    /// Rows of this worker's block — the length of each per-function payload.
    pub fn output_rows(&self) -> usize {
        self.matrix.rows()
    }

    /// First-order MAC count of this task's `m` products.
    pub fn macs(&self) -> u64 {
        (self.matrix.rows() * self.matrix.cols() * self.inputs.len()) as u64
    }

    /// The worker's (coded or raw) matrix block, behind the engine's `Arc`
    /// (see [`RoundTask::matrix`] for why the handle itself is exposed).
    pub fn matrix(&self) -> &Arc<Matrix<Fp<M>>> {
        &self.matrix
    }

    /// The `m` broadcast input vectors of this task, in function order.
    pub fn inputs(&self) -> &[Vec<Fp<M>>] {
        &self.inputs
    }
}

/// The outcome of one distributed matrix–vector round.
#[derive(Debug, Clone)]
pub struct RoundExecution<M: PrimeModulus> {
    /// The reconstructed product (length = rows of the full matrix).
    pub output: Vec<Fp<M>>,
    /// Cost breakdown charged to this round.
    pub costs: IterationCosts,
    /// Deterministic operation counts for this round (see
    /// [`avcc_sim::metrics::OpCounts`]): dimension-derived, identical across
    /// executors and hosts, the noise-free counterpart of `costs`.
    pub ops: OpCounts,
    /// Workers whose results the master actually used for reconstruction.
    pub used_workers: Vec<usize>,
    /// Workers identified as Byzantine during this round (by verification for
    /// AVCC, by error decoding for LCC; always empty for the uncoded scheme).
    pub detected_byzantine: Vec<usize>,
    /// Workers observed to straggle in this round (arrived far later than the
    /// median, or had not arrived when reconstruction became possible).
    pub observed_stragglers: Vec<usize>,
    /// Workers evicted by the pre-decode dual-codeword screen
    /// ([`avcc_coding::DualCodeword`]) before any per-worker verification
    /// ran. Always a subset of `detected_byzantine`; empty for engines (or
    /// rounds) that never screened.
    pub screened_workers: Vec<usize>,
}

/// The outcome of one *batched* round: `m` reconstructed products over the
/// shared encoded dataset, plus the common round bookkeeping.
#[derive(Debug, Clone)]
pub struct BatchExecution<M: PrimeModulus> {
    /// The reconstructed per-function products, in function order (each of
    /// length = rows of the full matrix).
    pub outputs: Vec<Vec<Fp<M>>>,
    /// Cost breakdown charged to this round. Compute and communication are
    /// paid once for the whole batch; verification and decoding reflect the
    /// batched check and the `m` per-function decodes.
    pub costs: IterationCosts,
    /// Deterministic operation counts for this round.
    pub ops: OpCounts,
    /// Workers whose results the master actually used for reconstruction.
    pub used_workers: Vec<usize>,
    /// Workers identified as Byzantine during this round.
    pub detected_byzantine: Vec<usize>,
    /// Workers observed to straggle in this round.
    pub observed_stragglers: Vec<usize>,
    /// Workers evicted by the pre-decode dual-codeword screen (run on the
    /// σ-combined claims — see the AVCC engine). Always a subset of
    /// `detected_byzantine`.
    pub screened_workers: Vec<usize>,
    /// Function indices localized as corrupted by the per-function fallback
    /// after a batched check failed (sorted, deduplicated). Empty whenever
    /// every examined worker passed the batched check.
    pub corrupted_functions: Vec<usize>,
}

/// Errors an engine can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeFailure {
    /// Not enough usable results to reconstruct the product.
    NotEnoughResults {
        /// Usable results available.
        available: usize,
        /// Results required.
        required: usize,
    },
    /// Decoding failed (propagated from the coding layer).
    DecodeFailed {
        /// Human-readable description.
        details: String,
    },
}

impl std::fmt::Display for SchemeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeFailure::NotEnoughResults {
                available,
                required,
            } => write!(
                f,
                "not enough usable worker results: {available} available, {required} required"
            ),
            SchemeFailure::DecodeFailed { details } => write!(f, "decoding failed: {details}"),
        }
    }
}

impl std::error::Error for SchemeFailure {}

/// Multiplier above the median arrival time beyond which a worker counts as
/// an *observed* straggler (the adaptive controller's input `S_t`).
pub const STRAGGLER_DETECTION_FACTOR: f64 = 3.0;

/// Identifies observed stragglers from a round's *compute* times: every worker
/// whose compute time exceeds `STRAGGLER_DETECTION_FACTOR ×` the median. The
/// network component is excluded because it is shared by all workers and would
/// otherwise mask compute-side stragglers on small tasks.
pub fn detect_stragglers<T>(outcomes: &[WorkerOutcome<T>]) -> Vec<usize> {
    if outcomes.is_empty() {
        return Vec::new();
    }
    let mut compute_times: Vec<f64> = outcomes.iter().map(|o| o.compute_seconds).collect();
    compute_times.sort_by(|a, b| a.partial_cmp(b).expect("finite compute times"));
    let median = compute_times[compute_times.len() / 2];
    let threshold = median * STRAGGLER_DETECTION_FACTOR;
    outcomes
        .iter()
        .filter(|o| o.compute_seconds > threshold)
        .map(|o| o.worker)
        .collect()
}

/// Assembles the compute/communication part of a round's cost from the subset
/// of outcomes the master actually waited for, plus the cost of broadcasting
/// the input vector to every worker.
pub fn waiting_costs<T>(
    used: &[&WorkerOutcome<T>],
    network: &NetworkModel,
    broadcast_bytes: usize,
    workers: usize,
) -> IterationCosts {
    let compute = used
        .iter()
        .map(|o| o.compute_seconds)
        .fold(0.0f64, f64::max);
    let receive = used
        .iter()
        .map(|o| o.network_seconds)
        .fold(0.0f64, f64::max);
    // The master sends the input vector to every worker before the round; the
    // sends happen back to back on its single link.
    let broadcast = network.transfer_seconds(broadcast_bytes) * workers as f64;
    IterationCosts {
        compute,
        communication: receive + broadcast,
        ..IterationCosts::default()
    }
}

/// Serialized size of a field vector in bytes (8 bytes per element, matching
/// the wire format a real implementation would use for `u64` representatives).
pub fn field_vector_bytes(len: usize) -> usize {
    len * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::F25;

    fn outcome(worker: usize, compute: f64, network: f64) -> WorkerOutcome<Vec<F25>> {
        WorkerOutcome {
            worker,
            payload: Vec::new(),
            compute_seconds: compute,
            network_seconds: network,
            arrival_seconds: compute + network,
            corrupted: false,
        }
    }

    #[test]
    fn straggler_detection_flags_late_workers() {
        let outcomes = vec![
            outcome(0, 1.0, 0.1),
            outcome(1, 1.1, 0.1),
            outcome(2, 0.9, 0.1),
            outcome(3, 10.0, 0.1),
        ];
        assert_eq!(detect_stragglers(&outcomes), vec![3]);
    }

    #[test]
    fn no_stragglers_in_a_homogeneous_round() {
        let outcomes = vec![
            outcome(0, 1.0, 0.1),
            outcome(1, 1.2, 0.1),
            outcome(2, 0.8, 0.1),
        ];
        assert!(detect_stragglers(&outcomes).is_empty());
    }

    #[test]
    fn empty_round_has_no_stragglers() {
        let outcomes: Vec<WorkerOutcome<Vec<F25>>> = Vec::new();
        assert!(detect_stragglers(&outcomes).is_empty());
    }

    #[test]
    fn waiting_costs_take_worst_case_over_used_workers() {
        let a = outcome(0, 2.0, 0.2);
        let b = outcome(1, 3.0, 0.1);
        let network = NetworkModel::default();
        let costs = waiting_costs(&[&a, &b], &network, 800, 4);
        assert!((costs.compute - 3.0).abs() < 1e-12);
        assert!(costs.communication > 0.2);
        assert_eq!(costs.verification, 0.0);
        assert_eq!(costs.decoding, 0.0);
    }

    #[test]
    fn field_vector_bytes_counts_eight_per_element() {
        assert_eq!(field_vector_bytes(100), 800);
    }

    #[test]
    fn scheme_failures_render_useful_messages() {
        let failure = SchemeFailure::NotEnoughResults {
            available: 3,
            required: 9,
        };
        assert!(failure.to_string().contains("3 available"));
        let failure = SchemeFailure::DecodeFailed {
            details: "boom".to_string(),
        };
        assert!(failure.to_string().contains("boom"));
    }
}
