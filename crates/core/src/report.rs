//! Training reports: per-iteration records, cumulative timelines and the
//! derived quantities the paper's tables and figures present.
//!
//! * Fig. 3 plots test accuracy against cumulative training time — available
//!   as [`TrainingReport::accuracy_timeline`].
//! * Table I reports speedups as the ratio of times to reach a common target
//!   accuracy — [`TrainingReport::time_to_accuracy`] and [`speedup`].
//! * Fig. 4 shows per-iteration cost breakdowns —
//!   [`TrainingReport::average_costs`].
//! * Fig. 5 compares cumulative execution time with and without dynamic
//!   coding — [`TrainingReport::cumulative_timeline`].

use avcc_sim::metrics::{IterationCosts, OpCounts};
use serde::{Deserialize, Serialize};

/// Everything recorded about one training iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Cost breakdown of this iteration.
    pub costs: IterationCosts,
    /// Deterministic operation counts for both rounds of this iteration —
    /// the noise-free counterpart of `costs` for comparisons on loaded hosts.
    pub ops: OpCounts,
    /// Cumulative simulated time after this iteration.
    pub cumulative_seconds: f64,
    /// Test accuracy after this iteration's update.
    pub test_accuracy: f64,
    /// Training loss after this iteration's update.
    pub train_loss: f64,
    /// Workers detected as Byzantine during this iteration.
    pub detected_byzantine: Vec<usize>,
    /// Workers evicted by the pre-decode dual-codeword screen during this
    /// iteration — always a subset of `detected_byzantine`.
    pub screened_workers: Vec<usize>,
    /// Workers observed to straggle during this iteration.
    pub observed_stragglers: Vec<usize>,
    /// Whether the adaptive controller re-encoded at the end of this
    /// iteration.
    pub reconfigured: bool,
}

/// The complete record of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// The scheme that produced this run ("uncoded", "lcc", "avcc",
    /// "static-vcc").
    pub scheme: String,
    /// A human-readable description of the fault scenario.
    pub scenario: String,
    /// Per-iteration records in order.
    pub iterations: Vec<IterationRecord>,
}

impl TrainingReport {
    /// Creates an empty report.
    pub fn new(scheme: impl Into<String>, scenario: impl Into<String>) -> Self {
        TrainingReport {
            scheme: scheme.into(),
            scenario: scenario.into(),
            iterations: Vec::new(),
        }
    }

    /// Appends an iteration record.
    pub fn push(&mut self, record: IterationRecord) {
        self.iterations.push(record);
    }

    /// Number of iterations recorded.
    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    /// `true` iff no iterations were recorded.
    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    /// Total simulated training time.
    pub fn total_seconds(&self) -> f64 {
        self.iterations
            .last()
            .map(|r| r.cumulative_seconds)
            .unwrap_or(0.0)
    }

    /// Median per-iteration *recurring* simulated time (reconfiguration
    /// excluded — it is a genuine one-off, not part of the steady state).
    ///
    /// The simulator derives iteration costs from real wall-clock
    /// measurements, so a host-scheduler preemption during one iteration can
    /// inflate [`TrainingReport::total_seconds`] arbitrarily. The median is
    /// robust to such spikes; cross-scheme timing comparisons should use
    /// [`TrainingReport::robust_total_seconds`].
    pub fn median_iteration_seconds(&self) -> f64 {
        if self.iterations.is_empty() {
            return 0.0;
        }
        let mut per_iteration: Vec<f64> = self
            .iterations
            .iter()
            .map(|r| r.costs.total() - r.costs.reconfiguration)
            .collect();
        per_iteration.sort_by(|a, b| a.partial_cmp(b).expect("iteration costs are finite"));
        per_iteration[per_iteration.len() / 2]
    }

    /// Noise-robust total: median recurring per-iteration time × iteration
    /// count, plus the *sum* of one-time reconfiguration costs. The median
    /// absorbs preemption spikes in the recurring costs without discarding
    /// real one-offs like dynamic re-encoding (Fig. 5).
    pub fn robust_total_seconds(&self) -> f64 {
        let reconfiguration: f64 = self
            .iterations
            .iter()
            .map(|r| r.costs.reconfiguration)
            .sum();
        self.median_iteration_seconds() * self.iterations.len() as f64 + reconfiguration
    }

    /// Final test accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.iterations
            .last()
            .map(|r| r.test_accuracy)
            .unwrap_or(0.0)
    }

    /// Best test accuracy reached at any iteration.
    pub fn best_accuracy(&self) -> f64 {
        self.iterations
            .iter()
            .map(|r| r.test_accuracy)
            .fold(0.0, f64::max)
    }

    /// `(cumulative time, accuracy)` pairs — the series plotted in Fig. 3.
    pub fn accuracy_timeline(&self) -> Vec<(f64, f64)> {
        self.iterations
            .iter()
            .map(|r| (r.cumulative_seconds, r.test_accuracy))
            .collect()
    }

    /// Cumulative time after each iteration — the series plotted in Fig. 5.
    pub fn cumulative_timeline(&self) -> Vec<f64> {
        self.iterations
            .iter()
            .map(|r| r.cumulative_seconds)
            .collect()
    }

    /// The first (simulated) time at which the test accuracy reached
    /// `target`, or `None` if it never did.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.iterations
            .iter()
            .find(|r| r.test_accuracy >= target)
            .map(|r| r.cumulative_seconds)
    }

    /// Average per-iteration cost breakdown (Fig. 4's bars).
    pub fn average_costs(&self) -> IterationCosts {
        if self.iterations.is_empty() {
            return IterationCosts::default();
        }
        let total = self
            .iterations
            .iter()
            .fold(IterationCosts::default(), |acc, r| acc.combined(&r.costs));
        total.scaled(1.0 / self.iterations.len() as f64)
    }

    /// Total number of Byzantine detections across the run.
    pub fn total_detections(&self) -> usize {
        self.iterations
            .iter()
            .map(|r| r.detected_byzantine.len())
            .sum()
    }

    /// Total number of screened-worker evictions across the run — the share
    /// of [`TrainingReport::total_detections`] caught by the dual-codeword
    /// screen before any Freivalds verification ran.
    pub fn total_screened(&self) -> usize {
        self.iterations
            .iter()
            .map(|r| r.screened_workers.len())
            .sum()
    }

    /// Number of iterations after which the adaptive controller re-encoded.
    pub fn reconfiguration_count(&self) -> usize {
        self.iterations.iter().filter(|r| r.reconfigured).count()
    }
}

/// The speedup of `fast` over `slow` — the ratio of the times at which each
/// run reached the target accuracy (Table I). Falls back to the ratio of total
/// training times when either run never reaches the target.
pub fn speedup(fast: &TrainingReport, slow: &TrainingReport, target_accuracy: f64) -> f64 {
    match (
        fast.time_to_accuracy(target_accuracy),
        slow.time_to_accuracy(target_accuracy),
    ) {
        (Some(fast_time), Some(slow_time)) if fast_time > 0.0 => slow_time / fast_time,
        _ => {
            // Median-based totals so a single preemption-inflated iteration
            // cannot skew the ratio.
            let fast_total = fast.robust_total_seconds();
            if fast_total > 0.0 {
                slow.robust_total_seconds() / fast_total
            } else {
                1.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(iteration: usize, accuracy: f64, seconds: f64, cumulative: f64) -> IterationRecord {
        IterationRecord {
            iteration,
            costs: IterationCosts {
                compute: seconds,
                ..IterationCosts::default()
            },
            ops: OpCounts::default(),
            cumulative_seconds: cumulative,
            test_accuracy: accuracy,
            train_loss: 1.0 - accuracy,
            detected_byzantine: Vec::new(),
            screened_workers: Vec::new(),
            observed_stragglers: Vec::new(),
            reconfigured: false,
        }
    }

    fn sample_report(times: &[f64], accuracies: &[f64]) -> TrainingReport {
        let mut report = TrainingReport::new("avcc", "test");
        let mut cumulative = 0.0;
        for (i, (&t, &a)) in times.iter().zip(accuracies.iter()).enumerate() {
            cumulative += t;
            report.push(record(i, a, t, cumulative));
        }
        report
    }

    #[test]
    fn totals_and_final_accuracy() {
        let report = sample_report(&[1.0, 1.0, 2.0], &[0.5, 0.8, 0.9]);
        assert_eq!(report.len(), 3);
        assert!((report.total_seconds() - 4.0).abs() < 1e-12);
        assert!((report.final_accuracy() - 0.9).abs() < 1e-12);
        assert!((report.best_accuracy() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let report = sample_report(&[1.0, 1.0, 2.0], &[0.5, 0.8, 0.9]);
        assert_eq!(report.time_to_accuracy(0.75), Some(2.0));
        assert_eq!(report.time_to_accuracy(0.95), None);
    }

    #[test]
    fn speedup_compares_times_to_target() {
        let fast = sample_report(&[1.0, 1.0], &[0.7, 0.9]);
        let slow = sample_report(&[3.0, 3.0], &[0.7, 0.9]);
        let ratio = speedup(&fast, &slow, 0.85);
        assert!((ratio - 3.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_falls_back_to_total_time() {
        let fast = sample_report(&[1.0], &[0.6]);
        let slow = sample_report(&[5.0], &[0.6]);
        assert!((speedup(&fast, &slow, 0.9) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn average_costs_divide_by_iterations() {
        let report = sample_report(&[1.0, 3.0], &[0.5, 0.6]);
        assert!((report.average_costs().compute - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_well_behaved() {
        let report = TrainingReport::new("lcc", "empty");
        assert!(report.is_empty());
        assert_eq!(report.total_seconds(), 0.0);
        assert_eq!(report.final_accuracy(), 0.0);
        assert_eq!(report.time_to_accuracy(0.5), None);
        assert_eq!(report.average_costs(), IterationCosts::default());
    }

    #[test]
    fn accuracy_timeline_pairs_time_with_accuracy() {
        let report = sample_report(&[2.0, 2.0], &[0.6, 0.8]);
        let timeline = report.accuracy_timeline();
        assert_eq!(timeline, vec![(2.0, 0.6), (4.0, 0.8)]);
        assert_eq!(report.cumulative_timeline(), vec![2.0, 4.0]);
    }

    #[test]
    fn detection_and_reconfiguration_counters() {
        let mut report = TrainingReport::new("avcc", "faults");
        let mut r = record(0, 0.5, 1.0, 1.0);
        r.detected_byzantine = vec![3, 7];
        r.screened_workers = vec![3];
        r.reconfigured = true;
        report.push(r);
        report.push(record(1, 0.6, 1.0, 2.0));
        assert_eq!(report.total_detections(), 2);
        assert_eq!(report.total_screened(), 1);
        assert_eq!(report.reconfiguration_count(), 1);
    }
}
