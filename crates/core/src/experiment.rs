//! High-level experiment harness: the paper's evaluation setups as data.
//!
//! [`ExperimentConfig`] captures one run of Fig. 3 / Fig. 4 / Table I — which
//! scheme, which designed `(N, K, S, M)`, which actual fault scenario (how
//! many stragglers and Byzantine nodes, which attack) and the workload
//! parameters. [`run_experiment`] turns it into a [`TrainingReport`].
//! The constructors mirror the exact configurations of §V:
//!
//! * LCC is always designed for `(N = 12, K = 9, S = 1, M = 1)` — the only
//!   assignment that satisfies eq. (1) with 12 workers.
//! * AVCC uses the same 12 workers with `S + M = 3` split per sub-experiment:
//!   `(S = 2, M = 1)` or `(S = 1, M = 2)`.
//! * The uncoded baseline uses 9 of the 12 workers with no redundancy.
//!
//! Engine construction goes through [`DistributedTrainer`], which since PR7
//! encodes each round's matrix into a shared
//! [`avcc_coding::EncodedDataset`] and opens lightweight per-function
//! engine sessions over it — an experiment's per-iteration costs are
//! unchanged, but multi-function serving (`avcc-serve`) can amortize one
//! encode across many products.

use avcc_coding::SchemeConfig;
use avcc_field::PrimeModulus;
use avcc_ml::dataset::{Dataset, DatasetConfig};
use avcc_sim::attack::{AttackModel, ByzantineSpec};
use avcc_sim::cluster::ClusterProfile;
use serde::{Deserialize, Serialize};

use crate::adaptive::AutopilotConfig;
use crate::driver::{DistributedTrainer, SchemeKind, TrainerConfig};
use crate::problem::TrainingProblem;
use crate::report::TrainingReport;
use crate::rounds::SchemeFailure;

/// The actual fault injection of one experiment (as opposed to the tolerances
/// the scheme was *designed* for).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Indices of the workers that straggle.
    pub stragglers: Vec<usize>,
    /// Latency multiplier applied to stragglers.
    pub straggler_multiplier: f64,
    /// Indices of the Byzantine workers.
    pub byzantine: Vec<usize>,
    /// The attack the Byzantine workers mount.
    pub attack: AttackModel,
}

impl FaultScenario {
    /// No stragglers and no Byzantine workers.
    pub fn none() -> Self {
        FaultScenario {
            stragglers: Vec::new(),
            straggler_multiplier: 8.0,
            byzantine: Vec::new(),
            attack: AttackModel::None,
        }
    }

    /// The paper's standard scenario: the first `stragglers` workers straggle
    /// and the next `byzantine` workers are compromised with `attack`. All
    /// fault indices fall inside the first `K = 9` workers so the uncoded
    /// baseline (which only uses those) is affected too.
    pub fn paper(stragglers: usize, byzantine: usize, attack: AttackModel) -> Self {
        FaultScenario {
            stragglers: (0..stragglers).collect(),
            straggler_multiplier: 8.0,
            byzantine: (stragglers..stragglers + byzantine).collect(),
            attack,
        }
    }

    /// A short label ("reverse s2 m1") for report scenarios.
    pub fn label(&self) -> String {
        let attack = match self.attack {
            AttackModel::None => "none",
            AttackModel::ReverseValue { .. } => "reverse",
            AttackModel::Constant { .. } => "constant",
            AttackModel::SparseFlip { .. } => "sparse-flip",
            AttackModel::Colluding { .. } => "colluding",
        };
        format!(
            "{attack} attack, S={}, M={}",
            self.stragglers.len(),
            self.byzantine.len()
        )
    }

    /// Builds the Byzantine specification for this scenario.
    pub fn byzantine_spec(&self) -> ByzantineSpec {
        ByzantineSpec::new(self.byzantine.iter().copied(), self.attack)
    }
}

/// One experiment of the evaluation section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The scheme under test.
    pub scheme: SchemeKind,
    /// Number of workers `N`.
    pub workers: usize,
    /// Number of data partitions `K`.
    pub partitions: usize,
    /// Straggler tolerance the scheme is designed for.
    pub designed_stragglers: usize,
    /// Byzantine tolerance the scheme is designed for.
    pub designed_byzantine: usize,
    /// Privacy parameter `T` (0 in all of the paper's experiments).
    pub colluding: usize,
    /// The actual fault injection.
    pub scenario: FaultScenario,
    /// Dataset shape.
    pub dataset: DatasetConfig,
    /// Number of training iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
    /// Simulator compute-time scale.
    pub time_scale: f64,
    /// The churn-aware closed-loop autopilot knobs (disabled in all of the
    /// paper's experiments; the elastic-fleet harness turns it on).
    pub autopilot: AutopilotConfig,
    /// Re-dispatches a parked round is allowed before shrink-recoding.
    pub stall_budget: usize,
}

impl ExperimentConfig {
    /// The paper's testbed defaults (`N = 12`, `K = 9`, 50 iterations) for a
    /// given scheme, designed tolerance split and fault scenario.
    pub fn paper_default(
        scheme: SchemeKind,
        designed_stragglers: usize,
        designed_byzantine: usize,
        scenario: FaultScenario,
    ) -> Self {
        ExperimentConfig {
            scheme,
            workers: 12,
            partitions: 9,
            designed_stragglers,
            designed_byzantine,
            colluding: 0,
            scenario,
            dataset: DatasetConfig::default(),
            iterations: 50,
            learning_rate: 5.0,
            seed: 42,
            // The default dataset is a scaled-down GISETTE (900 × 63 instead
            // of 6000 × 5000), which shrinks worker compute by ~2-3 orders of
            // magnitude while the network model stays the same. The larger
            // time scale restores the paper's compute-dominated regime so the
            // straggler and verification effects keep their relative weight;
            // the full-scale harness (`AVCC_FULL=1`) drops this back to 40.
            time_scale: 2000.0,
            autopilot: AutopilotConfig::disabled(),
            stall_budget: 4,
        }
    }

    /// The LCC baseline as the paper configures it: designed for
    /// `(S = 1, M = 1)` regardless of the actual scenario (that is the only
    /// feasible assignment with 12 workers and K = 9).
    pub fn paper_lcc(scenario: FaultScenario) -> Self {
        Self::paper_default(SchemeKind::Lcc, 1, 1, scenario)
    }

    /// AVCC designed for a given `(S, M)` split of the three redundant
    /// workers.
    pub fn paper_avcc(
        designed_stragglers: usize,
        designed_byzantine: usize,
        scenario: FaultScenario,
    ) -> Self {
        Self::paper_default(
            SchemeKind::Avcc,
            designed_stragglers,
            designed_byzantine,
            scenario,
        )
    }

    /// The uncoded baseline (9 participating workers, no redundancy).
    pub fn paper_uncoded(scenario: FaultScenario) -> Self {
        Self::paper_default(SchemeKind::Uncoded, 0, 0, scenario)
    }

    /// The scheme configuration implied by this experiment.
    pub fn coding(&self) -> SchemeConfig {
        SchemeConfig::new(
            self.workers,
            self.partitions,
            self.designed_stragglers,
            self.designed_byzantine,
            self.colluding,
            1,
        )
        .expect("experiment coding configuration must be structurally valid")
    }

    /// The cluster profile implied by this experiment.
    pub fn cluster(&self) -> ClusterProfile {
        ClusterProfile::uniform(self.workers).with_stragglers(
            &self.scenario.stragglers,
            self.scenario.straggler_multiplier,
        )
    }

    /// Builds the trainer for this experiment.
    pub fn build_trainer<M: PrimeModulus>(&self) -> DistributedTrainer<M> {
        let dataset = Dataset::gisette_like(self.dataset);
        let problem = TrainingProblem::from_dataset(&dataset, self.partitions);
        let trainer_config = TrainerConfig {
            scheme: self.scheme,
            coding: self.coding(),
            learning_rate: self.learning_rate,
            iterations: self.iterations,
            key_repetitions: 1,
            time_scale: self.time_scale,
            seed: self.seed,
            // The figures reproduce the paper's AVCC, whose master never
            // screens: Freivalds + erasure decoding absorb these fault
            // patterns, so the (post-paper) dual-codeword screen would only
            // add master-side cost to the figures' cost model.
            screen: false,
            autopilot: self.autopilot,
            stall_budget: self.stall_budget,
        };
        DistributedTrainer::new(
            problem,
            self.cluster(),
            self.scenario.byzantine_spec(),
            trainer_config,
            self.scenario.label(),
        )
    }
}

/// Runs one experiment end to end.
pub fn run_experiment<M: PrimeModulus>(
    config: &ExperimentConfig,
) -> Result<TrainingReport, SchemeFailure> {
    config.build_trainer::<M>().train()
}

/// Runs the Fig. 5 style dynamic-coding scenario: the run starts with the
/// fault conditions of `config.scenario`, and at `onset_iteration` the given
/// additional stragglers appear (on top of any existing ones). With
/// `SchemeKind::Avcc` the controller reacts by evicting detected Byzantine
/// workers and re-encoding; with `SchemeKind::StaticVcc` the coding stays
/// fixed and every subsequent iteration pays the straggler tail latency.
pub fn run_dynamic_coding_scenario<M: PrimeModulus>(
    config: &ExperimentConfig,
    onset_iteration: usize,
    onset_stragglers: &[usize],
    straggler_multiplier: f64,
) -> Result<TrainingReport, SchemeFailure> {
    let mut trainer = config.build_trainer::<M>();
    let mut report = TrainingReport::new(
        config.scheme.label(),
        format!(
            "{} + {} stragglers from iteration {}",
            config.scenario.label(),
            onset_stragglers.len(),
            onset_iteration
        ),
    );
    let mut cumulative = 0.0;
    for iteration in 0..config.iterations {
        if iteration == onset_iteration {
            let mut stragglers = config.scenario.stragglers.clone();
            stragglers.extend_from_slice(onset_stragglers);
            stragglers.sort_unstable();
            stragglers.dedup();
            // Worker indices may have shifted if the controller already
            // evicted nodes; clamp to the current cluster size.
            let current = trainer.current_coding().workers;
            stragglers.retain(|w| *w < current);
            trainer.set_stragglers(&stragglers, straggler_multiplier);
        }
        let record = trainer.run_iteration(iteration, &mut cumulative)?;
        report.push(record);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{P25, P64};

    fn quick(mut config: ExperimentConfig) -> ExperimentConfig {
        config.iterations = 5;
        config.time_scale = 1.0;
        config.dataset = DatasetConfig {
            train_samples: 180,
            test_samples: 60,
            features: 27,
            informative: 9,
            ..DatasetConfig::default()
        };
        config
    }

    #[test]
    fn paper_constructors_produce_feasible_configurations() {
        let scenario = FaultScenario::paper(1, 1, AttackModel::reverse());
        let lcc = ExperimentConfig::paper_lcc(scenario.clone());
        assert!(lcc.coding().lcc_feasible());
        let avcc = ExperimentConfig::paper_avcc(1, 2, scenario.clone());
        assert!(avcc.coding().avcc_feasible());
        assert!(!avcc.coding().lcc_feasible());
        let uncoded = ExperimentConfig::paper_uncoded(scenario);
        assert_eq!(uncoded.coding().partitions, 9);
    }

    #[test]
    fn scenario_labels_are_descriptive() {
        let scenario = FaultScenario::paper(2, 1, AttackModel::constant());
        assert_eq!(scenario.label(), "constant attack, S=2, M=1");
        assert_eq!(scenario.stragglers, vec![0, 1]);
        assert_eq!(scenario.byzantine, vec![2]);
    }

    #[test]
    fn fault_indices_are_disjoint_and_inside_the_uncoded_set() {
        let scenario = FaultScenario::paper(2, 2, AttackModel::reverse());
        for worker in &scenario.byzantine {
            assert!(!scenario.stragglers.contains(worker));
            assert!(*worker < 9);
        }
    }

    #[test]
    fn avcc_experiment_runs_end_to_end() {
        let scenario = FaultScenario::paper(1, 1, AttackModel::constant());
        let config = quick(ExperimentConfig::paper_avcc(2, 1, scenario));
        let report = run_experiment::<P25>(&config).unwrap();
        assert_eq!(report.len(), 5);
        assert_eq!(report.scheme, "avcc");
        assert!(report.total_detections() > 0);
    }

    #[test]
    fn avcc_experiment_runs_on_the_goldilocks_field() {
        // The pipeline is generic over the modulus: the same experiment must
        // run end-to-end on the 64-bit NTT-friendly field (with K = 9 the
        // coding falls back to Lagrange points — the point is that nothing in
        // quantization, encoding, verification or decoding assumes a small
        // modulus).
        let scenario = FaultScenario::paper(1, 1, AttackModel::constant());
        let config = quick(ExperimentConfig::paper_avcc(2, 1, scenario));
        let report = run_experiment::<P64>(&config).unwrap();
        assert_eq!(report.len(), 5);
        assert!(report.total_detections() > 0);
    }

    #[test]
    fn avcc_experiment_runs_on_subgroup_points() {
        // K = 8 with 12 workers on F64: the encoder takes the NTT fast path
        // (power-of-two K), training must converge identically through it.
        let scenario = FaultScenario::paper(1, 1, AttackModel::reverse());
        let mut config = quick(ExperimentConfig::paper_avcc(2, 1, scenario));
        config.partitions = 8;
        let report = run_experiment::<P64>(&config).unwrap();
        assert_eq!(report.len(), 5);
        assert!(report.total_detections() > 0);
    }

    #[test]
    fn all_schemes_run_the_same_scenario() {
        let scenario = FaultScenario::paper(1, 1, AttackModel::reverse());
        for config in [
            quick(ExperimentConfig::paper_uncoded(scenario.clone())),
            quick(ExperimentConfig::paper_lcc(scenario.clone())),
            quick(ExperimentConfig::paper_avcc(2, 1, scenario.clone())),
        ] {
            let report = run_experiment::<P25>(&config).unwrap();
            assert_eq!(report.len(), 5, "{} failed", config.scheme.label());
        }
    }
}
