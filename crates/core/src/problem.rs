//! Preparation of the training problem for distributed execution.
//!
//! Every scheme trains on identical inputs: the features are column-centered
//! and max-scaled ([`avcc_ml::FeatureScaler`]), the training-set size is made
//! divisible by the partition count `K` (row-blocked round 1) and the feature
//! dimension is zero-padded to a multiple of `K` (row-blocked round 2 operates
//! on `Xᵀ`). The padded columns carry zero weight forever, so the learning
//! problem is unchanged.

use avcc_field::{Fp, PrimeModulus};
use avcc_linalg::Matrix;
use avcc_ml::dataset::Dataset;
use avcc_ml::logistic::FeatureScaler;
use avcc_ml::quantized::QuantizedProtocol;

/// A training problem prepared for a given partition count.
#[derive(Debug, Clone)]
pub struct TrainingProblem {
    /// Scaled training features (`m × d`, with `m` and `d` multiples of `K`).
    pub train_features: Matrix<f64>,
    /// Training labels in `{0, 1}`.
    pub train_labels: Vec<f64>,
    /// Scaled test features (same column layout as training).
    pub test_features: Matrix<f64>,
    /// Test labels in `{0, 1}`.
    pub test_labels: Vec<f64>,
    /// The partition count the dimensions were aligned to.
    pub partitions: usize,
}

impl TrainingProblem {
    /// Prepares a problem from a raw dataset for `partitions` data blocks.
    pub fn from_dataset(dataset: &Dataset, partitions: usize) -> Self {
        assert!(partitions > 0, "partitions must be positive");
        let dataset = dataset.with_train_size_divisible_by(partitions);
        let (_, train_scaled, test_scaled) =
            FeatureScaler::fit_transform(&dataset.train_features, &dataset.test_features);
        let train_features = pad_columns(&train_scaled, partitions);
        let test_features = pad_columns(&test_scaled, partitions);
        TrainingProblem {
            train_features,
            train_labels: dataset.train_labels.clone(),
            test_features,
            test_labels: dataset.test_labels.clone(),
            partitions,
        }
    }

    /// Number of training samples `m`.
    pub fn samples(&self) -> usize {
        self.train_labels.len()
    }

    /// Feature dimension `d` (after padding).
    pub fn features(&self) -> usize {
        self.train_features.cols()
    }

    /// Quantizes the training features for round 1 (`X`, row-partitioned).
    pub fn round1_matrix<M: PrimeModulus>(&self, protocol: &QuantizedProtocol) -> Matrix<Fp<M>> {
        protocol.quantize_features(&self.train_features)
    }

    /// Quantizes the transposed training features for round 2 (`Xᵀ`,
    /// row-partitioned).
    pub fn round2_matrix<M: PrimeModulus>(&self, protocol: &QuantizedProtocol) -> Matrix<Fp<M>> {
        protocol.quantize_features(&self.train_features.transpose())
    }

    /// A safe default quantization protocol for this problem in the field `M`.
    pub fn default_protocol<M: PrimeModulus>(&self) -> QuantizedProtocol {
        QuantizedProtocol::for_problem::<M>(self.samples(), self.features(), 4.0)
    }
}

/// Pads a matrix with zero columns until its column count is a multiple of
/// `partitions`.
fn pad_columns(matrix: &Matrix<f64>, partitions: usize) -> Matrix<f64> {
    let remainder = matrix.cols() % partitions;
    if remainder == 0 {
        return matrix.clone();
    }
    let extra = partitions - remainder;
    let new_cols = matrix.cols() + extra;
    let mut data = Vec::with_capacity(matrix.rows() * new_cols);
    for row in matrix.rows_iter() {
        data.extend_from_slice(row);
        data.extend(std::iter::repeat_n(0.0, extra));
    }
    Matrix::from_vec(matrix.rows(), new_cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::P25;
    use avcc_ml::dataset::DatasetConfig;

    #[test]
    fn dimensions_are_aligned_to_partitions() {
        let dataset = Dataset::gisette_like(DatasetConfig {
            train_samples: 100,
            test_samples: 30,
            features: 25,
            informative: 10,
            ..DatasetConfig::default()
        });
        let problem = TrainingProblem::from_dataset(&dataset, 9);
        assert_eq!(problem.samples() % 9, 0);
        assert_eq!(problem.features() % 9, 0);
        assert_eq!(problem.test_features.cols(), problem.features());
        assert_eq!(problem.partitions, 9);
    }

    #[test]
    fn already_aligned_dimensions_are_untouched() {
        let dataset = Dataset::gisette_like(DatasetConfig::default());
        let problem = TrainingProblem::from_dataset(&dataset, 9);
        assert_eq!(problem.samples(), 900);
        assert_eq!(problem.features(), 63);
    }

    #[test]
    fn padded_columns_are_zero() {
        let dataset = Dataset::gisette_like(DatasetConfig {
            train_samples: 90,
            test_samples: 30,
            features: 20,
            informative: 8,
            ..DatasetConfig::default()
        });
        let problem = TrainingProblem::from_dataset(&dataset, 9);
        assert_eq!(problem.features(), 27);
        for i in 0..problem.train_features.rows() {
            for j in 20..27 {
                assert_eq!(*problem.train_features.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn quantized_matrices_have_matching_shapes() {
        let dataset = Dataset::gisette_like(DatasetConfig::default());
        let problem = TrainingProblem::from_dataset(&dataset, 9);
        let protocol = problem.default_protocol::<P25>();
        let round1 = problem.round1_matrix::<P25>(&protocol);
        let round2 = problem.round2_matrix::<P25>(&protocol);
        assert_eq!(round1.rows(), problem.samples());
        assert_eq!(round1.cols(), problem.features());
        assert_eq!(round2.rows(), problem.features());
        assert_eq!(round2.cols(), problem.samples());
    }
}
