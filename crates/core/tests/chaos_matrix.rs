//! The chaos harness (PR10): differential fault-injection matrix over the
//! distributed training pipeline.
//!
//! Every recoverable [`ChaosSchedule`] — crash, stall, corrupt-then-rejoin,
//! network flap, each hitting one or two workers, with and without the
//! closed-loop autopilot — must leave the trained model **bit-identical** to
//! the quiet-fleet oracle. The comparator is the per-iteration
//! `(test_accuracy, train_loss)` trajectory: both are deterministic `f64`
//! functions of the model weights, so exact equality across every iteration
//! certifies bit-identical models.
//!
//! Why this invariant holds (and must keep holding): decode recovers the
//! *exact* field product from any sufficient subset of honest results,
//! whatever `(N, K, T)` the fleet is currently coded for, and corrupted
//! payloads are dropped before decode. Churn, parking, shrink-recoding and
//! autopilot retunes change *which* results decode — never the decoded
//! values.

use avcc_coding::SchemeConfig;
use avcc_core::{
    train_distributed, AutopilotConfig, DistributedTrainer, SchemeKind, TrainerConfig,
    TrainingProblem, TrainingReport,
};
use avcc_field::P25;
use avcc_ml::dataset::{Dataset, DatasetConfig};
use avcc_sim::attack::ByzantineSpec;
use avcc_sim::churn::{ChaosSchedule, ChurnEventKind, ChurnSchedule};
use avcc_sim::cluster::ClusterProfile;
use avcc_sim::executor::{ThreadedExecutor, VirtualExecutor};

fn small_problem() -> TrainingProblem {
    let dataset = Dataset::gisette_like(DatasetConfig {
        train_samples: 180,
        test_samples: 60,
        features: 27,
        informative: 9,
        ..DatasetConfig::default()
    });
    TrainingProblem::from_dataset(&dataset, 9)
}

fn quick_config(autopilot: bool) -> TrainerConfig {
    TrainerConfig {
        iterations: 6,
        time_scale: 1.0,
        autopilot: if autopilot {
            AutopilotConfig::with_privacy(0)
        } else {
            AutopilotConfig::disabled()
        },
        ..TrainerConfig::paper_defaults(
            SchemeKind::Avcc,
            SchemeConfig::linear(12, 9, 2, 1).unwrap(),
        )
    }
}

fn make_trainer(autopilot: bool) -> DistributedTrainer<P25> {
    DistributedTrainer::new(
        small_problem(),
        ClusterProfile::uniform(12),
        ByzantineSpec::none(),
        quick_config(autopilot),
        "chaos",
    )
}

/// The per-iteration `(accuracy, loss)` trajectory.
fn trajectory(report: &TrainingReport) -> Vec<(f64, f64)> {
    report
        .iterations
        .iter()
        .map(|r| (r.test_accuracy, r.train_loss))
        .collect()
}

/// Runs the quiet-fleet oracle once per autopilot setting.
fn oracle(autopilot: bool) -> Vec<(f64, f64)> {
    let mut trainer = make_trainer(autopilot);
    let mut executor = VirtualExecutor::new(trainer.cluster().clone());
    let report = train_distributed(&mut trainer, &mut executor).unwrap();
    trajectory(&report)
}

/// Runs one chaos schedule and returns the trajectory.
fn chaos_run(schedule: ChurnSchedule, autopilot: bool) -> Vec<(f64, f64)> {
    let mut trainer = make_trainer(autopilot);
    let mut executor = VirtualExecutor::new(trainer.cluster().clone());
    executor.set_churn(schedule);
    let report = train_distributed(&mut trainer, &mut executor)
        .expect("every recoverable schedule must train to completion");
    trajectory(&report)
}

#[test]
fn chaos_matrix_is_bit_identical_to_the_quiet_fleet_oracle() {
    // {crash, stall, corrupt-then-rejoin, flap} × {1, 2 workers} ×
    // {autopilot off, autopilot on}: every cell must reproduce the quiet
    // oracle's model exactly. Faults land at round 2 (mid-iteration-1) so
    // both the round-1 and round-2 collects see perturbed fleets across the
    // run. All schedules stay above the recovery threshold (12 − 2 = 10 ≥ 9
    // responders), so no cell needs to park — parking has its own test.
    let worker_sets: [&[usize]; 2] = [&[5], &[5, 11]];
    for autopilot in [false, true] {
        let quiet = oracle(autopilot);
        for workers in worker_sets {
            let schedules = [
                ("crash", ChaosSchedule::crash(workers, 2)),
                ("stall", ChaosSchedule::stall(workers, 2, 3, 25.0)),
                (
                    "corrupt-then-rejoin",
                    ChaosSchedule::corrupt_then_rejoin(workers, 2, 3),
                ),
                ("flap", ChaosSchedule::flap(workers, 2, 3)),
            ];
            for (name, schedule) in schedules {
                assert_eq!(
                    chaos_run(schedule, autopilot),
                    quiet,
                    "{name} × {workers:?} × autopilot={autopilot} diverged from the oracle"
                );
            }
        }
    }
}

#[test]
fn chaos_schedules_replay_identically_on_the_threaded_executor() {
    // The same churn schedule on the concurrent executor: arrival *order*
    // differs run to run, but the round clock (not wall-clock) drives the
    // churn windows, so the model must still match the oracle exactly.
    let quiet = oracle(false);
    let mut trainer = make_trainer(false);
    let mut executor = ThreadedExecutor::new(trainer.cluster().clone());
    executor.sleep_per_slowdown_unit = 0.0005;
    executor.set_churn(ChaosSchedule::flap(&[3, 7], 2, 3));
    let report = train_distributed(&mut trainer, &mut executor).unwrap();
    assert_eq!(trajectory(&report), quiet);
}

#[test]
fn below_threshold_fleet_parks_then_resumes_on_rejoin() {
    // Four workers flap out before the first dispatch: only 8 responders
    // remain, below the threshold of 9, so the driver must park the round
    // and re-dispatch until the flap window closes — and the trajectory must
    // still equal the quiet oracle's.
    let quiet = oracle(false);
    let mut trainer = make_trainer(false);
    let mut executor = VirtualExecutor::new(trainer.cluster().clone());
    executor.set_churn(ChaosSchedule::flap(&[0, 1, 2, 3], 0, 3));
    let report = train_distributed(&mut trainer, &mut executor)
        .expect("a below-threshold fleet must park, not error");
    assert_eq!(trajectory(&report), quiet);

    let kinds: Vec<ChurnEventKind> = trainer.fleet_events().iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&ChurnEventKind::Parked),
        "the round must have parked: {kinds:?}"
    );
    assert!(
        kinds.contains(&ChurnEventKind::Resumed),
        "the parked round must have resumed: {kinds:?}"
    );
    assert!(
        !kinds.contains(&ChurnEventKind::ShrinkRecoded),
        "a rejoin inside the stall budget must not shrink the code: {kinds:?}"
    );
}

#[test]
fn exhausted_stall_budget_shrink_recodes_instead_of_erroring() {
    // A permanent crash of four workers leaves 8 responders — below the
    // threshold of 9, forever. The stall budget runs out and the driver must
    // shrink-recode (K 9 → 8 fits 8 responders) rather than fail; decode
    // stays exact, so the trajectory still matches the quiet oracle.
    let quiet = oracle(false);
    let mut trainer = make_trainer(false);
    let mut executor = VirtualExecutor::new(trainer.cluster().clone());
    executor.set_churn(ChaosSchedule::crash(&[0, 1, 2, 3], 2));
    let report = train_distributed(&mut trainer, &mut executor)
        .expect("an exhausted stall budget must shrink-recode, not error");
    assert_eq!(trajectory(&report), quiet);
    assert!(trainer.current_coding().partitions < 9);
    let kinds: Vec<ChurnEventKind> = trainer.fleet_events().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&ChurnEventKind::ShrinkRecoded), "{kinds:?}");

    // The report charges the shrink's re-distribution cost somewhere.
    assert!(report.iterations.iter().any(|r| r.reconfigured));
}

#[test]
fn autopilot_grows_k_back_after_the_fleet_heals() {
    // Crash two workers for a long stretch, then rejoin them. With the
    // autopilot on, the smoothed churn rate first pushes K down (or holds it
    // low), and after the heal the estimate decays until the autopilot
    // retunes K upward again — all without disturbing the model.
    let mut trainer = make_trainer(true);
    let mut executor = VirtualExecutor::new(trainer.cluster().clone());
    let schedule = ChurnSchedule::quiet()
        .at(2, avcc_sim::churn::ChurnAction::Crash { worker: 4 })
        .at(2, avcc_sim::churn::ChurnAction::Crash { worker: 9 })
        .at(14, avcc_sim::churn::ChurnAction::Join { worker: 4 })
        .at(14, avcc_sim::churn::ChurnAction::Join { worker: 9 });
    let config = TrainerConfig {
        iterations: 24,
        ..quick_config(true)
    };
    trainer = DistributedTrainer::new(
        small_problem(),
        ClusterProfile::uniform(12),
        ByzantineSpec::none(),
        config,
        "chaos-heal",
    );
    executor.set_churn(schedule);
    let report = train_distributed(&mut trainer, &mut executor).unwrap();
    assert_eq!(report.len(), 24);

    let retunes = trainer
        .fleet_events()
        .iter()
        .filter(|e| e.kind == ChurnEventKind::AutopilotRetune)
        .count();
    assert!(
        retunes >= 2,
        "expected shrink and regrow retunes: {retunes}"
    );
    // After the heal the autopilot reclaims throughput: K ends above the
    // churn-era floor and the fleet still has all 12 slots.
    assert_eq!(trainer.current_coding().workers, 12);
    assert!(trainer.current_coding().partitions >= 9);

    // And the model is still the oracle's.
    let mut oracle_trainer = DistributedTrainer::<P25>::new(
        small_problem(),
        ClusterProfile::uniform(12),
        ByzantineSpec::none(),
        TrainerConfig {
            iterations: 24,
            ..quick_config(false)
        },
        "chaos-heal-oracle",
    );
    let oracle_report = oracle_trainer.train().unwrap();
    assert_eq!(trajectory(&report), trajectory(&oracle_report));
}
