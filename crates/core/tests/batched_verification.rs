//! The batched round's contract: `m` products collected through
//! `dispatch_batch`/`collect_batch` are bit-identical to `m` independent
//! single-function rounds (and to the plain `mat_vec` oracle), the batched
//! Freivalds pass accepts exactly when every per-function check accepts, and
//! a corrupted function inside a batch is localized by the per-function
//! fallback — across schemes and moduli.

use std::sync::Arc;

use avcc_coding::{EncodedDataset, SchemeConfig};
use avcc_core::{AvccMatVec, LccMatVec, MatVecEngine, UncodedMatVec};
use avcc_field::{Fp, PrimeModulus, P25, P64};
use avcc_linalg::{mat_vec, Matrix};
use avcc_sim::attack::ByzantineSpec;
use avcc_sim::cluster::ClusterProfile;
use avcc_sim::executor::{VirtualExecutor, WorkerOutcome};
use avcc_sim::NetworkModel;
use avcc_verify::KeyGenConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_matrix<M: PrimeModulus>(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix<Fp<M>> {
    Matrix::from_vec(rows, cols, avcc_field::random_matrix(rng, rows, cols))
}

fn random_inputs<M: PrimeModulus>(
    rng: &mut StdRng,
    functions: usize,
    cols: usize,
) -> Vec<Vec<Fp<M>>> {
    (0..functions)
        .map(|_| avcc_field::random_vector(rng, cols))
        .collect()
}

/// Runs one batched round and `m` independent single rounds for every scheme
/// over one modulus, asserting all outputs equal the `mat_vec` oracle exactly.
fn batch_matches_singles_for_modulus<M: PrimeModulus>(seed: u64, functions: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let matrix = random_matrix::<M>(&mut rng, 18, 6);
    let inputs = random_inputs::<M>(&mut rng, functions, 6);
    let oracle: Vec<Vec<Fp<M>>> = inputs.iter().map(|input| mat_vec(&matrix, input)).collect();
    // AVCC tolerates (S=2, M=1) at N=12; the same budget is LCC-infeasible
    // (eq. 1 needs S + 2M headroom), so LCC gets its own (S=1, M=1) dataset.
    // The uncoded baseline uses the raw partition of the same matrix.
    let avcc_config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
    let lcc_config = SchemeConfig::linear(12, 9, 1, 1).unwrap();
    let avcc_coded = Arc::new(EncodedDataset::<M>::encode(&matrix, avcc_config, &mut rng));
    let lcc_coded = Arc::new(EncodedDataset::<M>::encode(&matrix, lcc_config, &mut rng));
    let raw = Arc::new(EncodedDataset::<M>::partitioned(&matrix, 9));
    let mut engines: Vec<Box<dyn MatVecEngine<M>>> = vec![
        Box::new(AvccMatVec::over(
            avcc_coded,
            KeyGenConfig::default(),
            &mut rng,
        )),
        Box::new(LccMatVec::over(lcc_coded)),
        Box::new(UncodedMatVec::over(raw)),
    ];

    for engine in engines.iter_mut() {
        let executor =
            VirtualExecutor::new(ClusterProfile::uniform(engine.workers())).with_time_scale(1.0);
        let mut round_rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let batch = engine
            .execute_batch(&inputs, &executor, &ByzantineSpec::none(), &mut round_rng)
            .unwrap();
        assert_eq!(batch.outputs.len(), functions);
        assert!(batch.corrupted_functions.is_empty());
        assert!(batch.detected_byzantine.is_empty());
        for (function, output) in batch.outputs.iter().enumerate() {
            assert_eq!(
                output,
                &oracle[function],
                "{}: batched function {function} diverged from the oracle",
                engine.name()
            );
        }
        // m independent single-function rounds over the same session.
        for (function, input) in inputs.iter().enumerate() {
            let single = engine
                .execute(input, &executor, &ByzantineSpec::none(), &mut round_rng)
                .unwrap();
            assert_eq!(
                single.output,
                oracle[function],
                "{}: single function {function} diverged from the oracle",
                engine.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn batched_rounds_match_independent_rounds_across_schemes(
        seed in 0u64..1000,
        functions in 1usize..6,
    ) {
        batch_matches_singles_for_modulus::<P25>(seed, functions);
        batch_matches_singles_for_modulus::<P64>(seed, functions);
    }
}

/// Builds arrival-ordered batch outcomes by running the dispatched tasks
/// directly, corrupting the listed `(worker, function)` payload entries.
fn manual_outcomes<M: PrimeModulus>(
    engine: &AvccMatVec<M>,
    inputs: &[Vec<Fp<M>>],
    corruptions: &[(usize, usize)],
) -> Vec<WorkerOutcome<Vec<Vec<Fp<M>>>>> {
    engine
        .dispatch_batch(inputs)
        .iter()
        .map(|task| {
            let worker = task.worker;
            let mut payload = task.run();
            for &(bad_worker, function) in corruptions {
                if worker == bad_worker {
                    payload[function][0] += Fp::<M>::ONE;
                }
            }
            WorkerOutcome {
                worker,
                payload,
                compute_seconds: 0.001,
                network_seconds: 0.0001,
                arrival_seconds: 0.001 * (worker + 1) as f64,
                corrupted: corruptions.iter().any(|&(bad, _)| bad == worker),
            }
        })
        .collect()
}

/// The reject side of the batched check: corrupting exactly one function of
/// one worker fails the combined check for that worker only, the fallback
/// localizes the function, and the decoded outputs are still exact.
fn corrupted_function_is_localized_for_modulus<M: PrimeModulus>(seed: u64, bad_function: usize) {
    let functions = 4;
    let mut rng = StdRng::seed_from_u64(seed);
    let matrix = random_matrix::<M>(&mut rng, 18, 6);
    let inputs = random_inputs::<M>(&mut rng, functions, 6);
    let oracle: Vec<Vec<Fp<M>>> = inputs.iter().map(|input| mat_vec(&matrix, input)).collect();
    let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
    let mut engine = AvccMatVec::<M>::new(&matrix, config, KeyGenConfig::default(), &mut rng);

    // Worker 0 arrives first (so the master is guaranteed to examine it) and
    // corrupts exactly one function of its batch payload.
    let outcomes = manual_outcomes(&engine, &inputs, &[(0, bad_function)]);
    let mut collect_rng = StdRng::seed_from_u64(seed ^ 0xbad);
    let batch = engine
        .collect_batch(
            &inputs,
            &outcomes,
            &NetworkModel::default(),
            1.0,
            &mut collect_rng,
        )
        .unwrap();

    assert_eq!(batch.detected_byzantine, vec![0]);
    assert!(!batch.used_workers.contains(&0));
    assert_eq!(
        batch.corrupted_functions,
        vec![bad_function],
        "fallback must localize exactly the corrupted function"
    );
    for (function, output) in batch.outputs.iter().enumerate() {
        assert_eq!(
            output, &oracle[function],
            "function {function} must decode exactly"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn corrupted_function_is_localized_across_moduli(
        seed in 0u64..1000,
        bad_function in 0usize..4,
    ) {
        corrupted_function_is_localized_for_modulus::<P25>(seed, bad_function);
        corrupted_function_is_localized_for_modulus::<P64>(seed, bad_function);
    }
}

#[test]
fn multiple_corrupted_functions_are_all_localized() {
    let functions = 5;
    let mut rng = StdRng::seed_from_u64(77);
    let matrix = random_matrix::<P25>(&mut rng, 18, 6);
    let inputs = random_inputs::<P25>(&mut rng, functions, 6);
    let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
    let mut engine = AvccMatVec::<P25>::new(&matrix, config, KeyGenConfig::default(), &mut rng);

    // Worker 0 corrupts functions 1 and 3; worker 2 corrupts function 1.
    let outcomes = manual_outcomes(&engine, &inputs, &[(0, 1), (0, 3), (2, 1)]);
    let mut collect_rng = StdRng::seed_from_u64(78);
    let batch = engine
        .collect_batch(
            &inputs,
            &outcomes,
            &NetworkModel::default(),
            1.0,
            &mut collect_rng,
        )
        .unwrap();
    assert_eq!(batch.detected_byzantine, vec![0, 2]);
    assert_eq!(batch.corrupted_functions, vec![1, 3]);
    for (function, input) in inputs.iter().enumerate() {
        assert_eq!(batch.outputs[function], mat_vec(&matrix, input));
    }
}

#[test]
fn batch_decode_amortizes_the_basis_cache() {
    let functions = 4;
    let mut rng = StdRng::seed_from_u64(99);
    let matrix = random_matrix::<P25>(&mut rng, 18, 6);
    let inputs = random_inputs::<P25>(&mut rng, functions, 6);
    let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
    let mut engine = AvccMatVec::<P25>::new(&matrix, config, KeyGenConfig::default(), &mut rng);
    assert_eq!(engine.decode_cache_stats(), (0, 0));

    let executor = VirtualExecutor::new(ClusterProfile::uniform(12)).with_time_scale(1.0);
    let mut round_rng = StdRng::seed_from_u64(100);
    engine
        .execute_batch(&inputs, &executor, &ByzantineSpec::none(), &mut round_rng)
        .unwrap();
    // One survivor set, m per-function decodes: the first pays for the
    // Lagrange basis, the remaining m − 1 hit the shared cache.
    assert_eq!(engine.decode_cache_stats(), (functions as u64 - 1, 1));

    // A cloned session shares the same dataset, hence the same cache.
    let clone = engine.clone();
    assert_eq!(clone.decode_cache_stats(), (functions as u64 - 1, 1));
}

#[test]
fn empty_arrivals_fail_loudly() {
    let mut rng = StdRng::seed_from_u64(123);
    let matrix = random_matrix::<P25>(&mut rng, 18, 6);
    let inputs = random_inputs::<P25>(&mut rng, 2, 6);
    let config = SchemeConfig::linear(12, 9, 2, 1).unwrap();
    let mut engine = AvccMatVec::<P25>::new(&matrix, config, KeyGenConfig::default(), &mut rng);
    let mut collect_rng = StdRng::seed_from_u64(124);
    let result = engine.collect_batch(
        &inputs,
        &[],
        &NetworkModel::default(),
        1.0,
        &mut collect_rng,
    );
    assert!(matches!(
        result,
        Err(avcc_core::SchemeFailure::NotEnoughResults {
            available: 0,
            required: 9
        })
    ));
}
