//! The adversarial screening matrix: scheme × attack × straggler count.
//!
//! Every cell plants a known Byzantine set mounting one of the five attack
//! models (None / ReverseValue / Constant / SparseFlip / Colluding), drops a
//! known straggler set, and asserts three things:
//!
//! 1. **Soundness + completeness of the screen**: the standalone
//!    [`DualCodeword`] check reports `Clean` exactly on attack-free rounds
//!    and localizes the planted Byzantine set *exactly* otherwise.
//! 2. **Bit-identical output**: the AVCC engine's screened collect decodes
//!    the same product, bit for bit, as the detect-and-redecode oracle
//!    (Berlekamp–Welch [`decode_with_errors`] over the same corrupted
//!    claims) — and both equal the plain `mat_vec` oracle.
//! 3. **Oracle agreement on localization**: the worker sets identified by
//!    the screen, the engine, and the error decoder all match the planted
//!    set.
//!
//! [`decode_with_errors`]: avcc_coding::LagrangeDecoder::decode_with_errors

use std::sync::Arc;

use avcc_coding::{DualCodeword, EncodedDataset, SchemeConfig, ScreenOutcome};
use avcc_core::{AvccMatVec, MatVecEngine};
use avcc_field::{Fp, PrimeModulus, P25, P61, P64};
use avcc_linalg::{mat_vec, Matrix};
use avcc_sim::attack::{AttackModel, ByzantineSpec};
use avcc_sim::executor::WorkerOutcome;
use avcc_sim::NetworkModel;
use avcc_verify::KeyGenConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The five attack models of the matrix, paired with how many workers mount
/// each (clamped to the scheme's Byzantine budget per cell).
fn attack_rows() -> Vec<(AttackModel, usize)> {
    vec![
        (AttackModel::None, 0),
        (AttackModel::reverse(), 3),
        (AttackModel::constant(), 3),
        // Sparse corruption is the hardest screening case: only two symbols
        // of each Byzantine block differ from the honest value.
        (AttackModel::sparse_flip(2), 3),
        // Colluders transmit *identical* forged blocks.
        (AttackModel::colluding(2), 2),
    ]
}

/// Runs the engine's dispatched tasks honestly, applies the attack
/// master-side (exactly as the executors do), and drops the straggler set.
/// Outcomes arrive in worker order.
fn manual_outcomes<M: PrimeModulus>(
    engine: &AvccMatVec<M>,
    input: &[Fp<M>],
    byzantine: &ByzantineSpec,
    stragglers: &[usize],
) -> Vec<WorkerOutcome<Vec<Fp<M>>>> {
    engine
        .dispatch(input)
        .iter()
        .filter(|task| !stragglers.contains(&task.worker))
        .map(|task| {
            let worker = task.worker;
            let mut payload = task.run();
            let corrupted = byzantine.corrupt(worker, &mut payload);
            WorkerOutcome {
                worker,
                payload,
                compute_seconds: 0.001,
                network_seconds: 0.0001,
                arrival_seconds: 0.001 * (worker + 1) as f64,
                corrupted,
            }
        })
        .collect()
}

/// One cell of the matrix: plant `byzantine` workers mounting `attack`,
/// drop `straggler_count` workers, and check screen, engine and oracle
/// against each other.
fn run_cell<M: PrimeModulus>(
    config: SchemeConfig,
    attack: AttackModel,
    byzantine_count: usize,
    straggler_count: usize,
    seed: u64,
) {
    let workers = config.workers;
    let threshold = config.recovery_threshold();
    // Straggle from the top, plant Byzantine workers low — disjoint sets.
    let stragglers: Vec<usize> = (workers - straggler_count..workers).collect();
    let planted: Vec<usize> = [1usize, 7, 12]
        .into_iter()
        .take(byzantine_count.min(config.byzantine))
        .collect();
    let responders = workers - straggler_count;
    assert!(
        planted.len() <= (responders - threshold) / 2,
        "cell must stay within the screen's localization capacity"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let rows = 3 * config.partitions;
    let cols = 6;
    let matrix = Matrix::from_vec(rows, cols, avcc_field::random_matrix(&mut rng, rows, cols));
    let input: Vec<Fp<M>> = avcc_field::random_vector(&mut rng, cols);
    let oracle_product = mat_vec(&matrix, &input);

    let dataset = Arc::new(EncodedDataset::<M>::encode(&matrix, config, &mut rng));
    let mut engine = AvccMatVec::over(Arc::clone(&dataset), KeyGenConfig::default(), &mut rng);
    let spec = ByzantineSpec::new(planted.iter().copied(), attack);
    let outcomes = manual_outcomes(&engine, &input, &spec, &stragglers);
    let claims: Vec<(usize, Vec<Fp<M>>)> = outcomes
        .iter()
        .map(|o| (o.worker, o.payload.clone()))
        .collect();

    // (1) The standalone screen: Clean on honest rounds, exact localization
    // of the planted set otherwise.
    let screen = DualCodeword::<M>::new(config);
    let mut screen_rng = StdRng::seed_from_u64(seed ^ 0x5c4ee);
    let report = screen.screen(&claims, 2, &mut screen_rng).unwrap();
    let expect_corruption = !matches!(attack, AttackModel::None) && !planted.is_empty();
    match report.outcome {
        ScreenOutcome::Clean => assert!(
            !expect_corruption,
            "screen missed the planted set {planted:?} under {attack:?}"
        ),
        ScreenOutcome::Corrupted { ref workers } => {
            assert!(expect_corruption, "false positive on an honest round");
            assert_eq!(
                workers, &planted,
                "screen must localize exactly the planted set under {attack:?}"
            );
        }
        ScreenOutcome::Unlocalized => panic!(
            "screen failed to localize {planted:?} under {attack:?} with \
             {responders} responders (threshold {threshold})"
        ),
    }

    // (2) The detect-and-redecode oracle: Berlekamp–Welch error decoding
    // over the same claims finds the same workers and the same product.
    let mut oracle_rng = StdRng::seed_from_u64(seed ^ 0x0c1e);
    let (blocks, error_positions) = dataset
        .decoder()
        .expect("AVCC dataset is coded")
        .decode_with_errors(&claims, planted.len(), &mut oracle_rng)
        .unwrap();
    let mut located = error_positions;
    located.sort_unstable();
    assert_eq!(located, planted, "oracle localization diverged");
    let redecoded: Vec<Fp<M>> = blocks.into_iter().flatten().collect();
    assert_eq!(redecoded, oracle_product, "oracle decode diverged");

    // (3) The engine's screened collect: bit-identical output, screened set
    // equal to the planted set, screened ⊆ detected.
    let mut collect_rng = StdRng::seed_from_u64(seed ^ 0xc011ec7);
    let execution = engine
        .collect(
            &input,
            &outcomes,
            &NetworkModel::default(),
            1.0,
            &mut collect_rng,
        )
        .unwrap();
    assert_eq!(
        execution.output, oracle_product,
        "screened decode must be bit-identical to the redecode oracle"
    );
    assert_eq!(
        execution.screened_workers, planted,
        "engine screening must evict exactly the planted set under {attack:?}"
    );
    assert!(execution
        .screened_workers
        .iter()
        .all(|w| execution.detected_byzantine.contains(w)));
    for evicted in &execution.screened_workers {
        assert!(
            !execution.used_workers.contains(evicted),
            "screened worker {evicted} must not feed the decoder"
        );
    }
}

/// The full matrix for one modulus: two schemes (a plain MDS-style config
/// and a privacy-padded one) × five attacks × three straggler counts.
fn matrix_for_modulus<M: PrimeModulus>(seed: u64) {
    // Plain config: N=16, K=8, S=2, M=3 — threshold 8, so up to
    // (14 − 8)/2 = 3 localizable errors even with both stragglers out.
    let plain = SchemeConfig::linear(16, 8, 2, 3).unwrap();
    // Privacy-padded config: T=2 random pads, threshold (6+2−1)+1 = 8,
    // Byzantine budget M=2.
    let padded = SchemeConfig::new(16, 6, 2, 2, 2, 1).unwrap();
    for config in [plain, padded] {
        for (attack, byzantine_count) in attack_rows() {
            for straggler_count in 0..=2usize {
                run_cell::<M>(config, attack, byzantine_count, straggler_count, seed);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn screening_matrix_holds_across_moduli(seed in 0u64..1000) {
        matrix_for_modulus::<P25>(seed);
        matrix_for_modulus::<P61>(seed);
        // P64 has NTT metadata: straggler-free cells take the closed-form
        // coset weights + NTT dual evaluation, straggling cells the general
        // cached-weight path.
        matrix_for_modulus::<P64>(seed);
    }
}

/// An attack the screen provably cannot see: when *every* responder sends
/// the same constant vector, the claims form a valid (constant-polynomial)
/// codeword, so the screen reports `Clean` — and the engine's Freivalds
/// backstop is what rejects the round. Belt and suspenders, by design.
#[test]
fn all_worker_constant_attack_passes_screen_but_fails_freivalds() {
    let config = SchemeConfig::linear(16, 8, 2, 3).unwrap();
    let mut rng = StdRng::seed_from_u64(41);
    let matrix = Matrix::from_vec(24, 6, avcc_field::random_matrix(&mut rng, 24, 6));
    let input: Vec<Fp<P25>> = avcc_field::random_vector(&mut rng, 6);
    let dataset = Arc::new(EncodedDataset::<P25>::encode(&matrix, config, &mut rng));
    let mut engine = AvccMatVec::over(Arc::clone(&dataset), KeyGenConfig::default(), &mut rng);

    let spec = ByzantineSpec::new(0..16, AttackModel::constant());
    let outcomes = manual_outcomes(&engine, &input, &spec, &[]);
    let claims: Vec<(usize, Vec<Fp<P25>>)> = outcomes
        .iter()
        .map(|o| (o.worker, o.payload.clone()))
        .collect();

    let screen = DualCodeword::<P25>::new(config);
    let report = screen.screen(&claims, 2, &mut rng).unwrap();
    assert_eq!(report.outcome, ScreenOutcome::Clean);

    let result = engine.collect(&input, &outcomes, &NetworkModel::default(), 1.0, &mut rng);
    assert!(matches!(
        result,
        Err(avcc_core::SchemeFailure::NotEnoughResults { .. })
    ));
}
