//! Lagrange basis polynomials and interpolation.
//!
//! The AVCC / LCC encoder is built directly on the Lagrange basis (paper
//! eq. 12–13): for distinct points `β_1..β_{K+T}` the basis monomial
//!
//! ```text
//! ℓ_j(z) = Π_{k≠j} (z − β_k) / (β_j − β_k)
//! ```
//!
//! satisfies `ℓ_j(β_j) = 1` and `ℓ_j(β_k) = 0` for `k ≠ j`, so the encoding
//! polynomial `u(z) = Σ_j X_j ℓ_j(z)` passes through the data blocks at the
//! β-points. Decoding is interpolation from any `deg+1` evaluations.

use avcc_field::PrimeField;

use crate::dense::Polynomial;

/// A precomputed Lagrange basis over a fixed set of distinct interpolation
/// points.
///
/// Precomputing the basis lets the encoder evaluate all `ℓ_j(α_i)` once and
/// reuse them across the (potentially many) columns of the data matrix.
#[derive(Debug, Clone)]
pub struct LagrangeBasis<F: PrimeField> {
    points: Vec<F>,
    /// `weights[j] = Π_{k≠j} (β_j − β_k)^{-1}` — barycentric weights.
    weights: Vec<F>,
}

impl<F: PrimeField> LagrangeBasis<F> {
    /// Builds the basis for the given distinct points.
    ///
    /// # Panics
    /// Panics if the points are not pairwise distinct or the set is empty.
    pub fn new(points: Vec<F>) -> Self {
        assert!(
            !points.is_empty(),
            "Lagrange basis needs at least one point"
        );
        let mut denominators = Vec::with_capacity(points.len());
        for (j, &beta_j) in points.iter().enumerate() {
            let mut denominator = F::ONE;
            for (k, &beta_k) in points.iter().enumerate() {
                if j == k {
                    continue;
                }
                let difference = beta_j - beta_k;
                assert!(
                    !difference.is_zero(),
                    "Lagrange basis points must be pairwise distinct"
                );
                denominator *= difference;
            }
            denominators.push(denominator);
        }
        // One Montgomery batch inversion instead of one Fermat exponentiation
        // per point — this constructor sits on the decoder's per-iteration
        // path.
        let weights = F::batch_inverse(&denominators);
        LagrangeBasis { points, weights }
    }

    /// The interpolation points `β_j`.
    pub fn points(&self) -> &[F] {
        &self.points
    }

    /// Number of basis polynomials.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` iff the basis is empty (never true for a constructed basis).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Evaluates every basis monomial `ℓ_j` at the point `z`, returning the
    /// vector `[ℓ_1(z), …, ℓ_n(z)]`.
    ///
    /// If `z` coincides with one of the interpolation points the result is the
    /// corresponding indicator vector (handled exactly, not via division).
    pub fn evaluate_at(&self, z: F) -> Vec<F> {
        self.evaluate_at_many(core::slice::from_ref(&z))
            .pop()
            .expect("one basis row per target")
    }

    /// Evaluates every basis monomial at each of `targets`, returning one
    /// `[ℓ_1(z), …, ℓ_n(z)]` row per target.
    ///
    /// All non-indicator targets share a **single** batch inversion over the
    /// flattened difference vectors: one Fermat inversion and one
    /// `3(n·m − 1)`-multiply chain for `m` targets over `n` points, instead
    /// of `m` separate inversions — the shape the decoder's Lagrange
    /// fallback hits once per output block. The chain itself is
    /// Montgomery-routed for moduli that opted in (see
    /// [`avcc_field::MontgomeryModulus`]).
    pub fn evaluate_at_many(&self, targets: &[F]) -> Vec<Vec<F>> {
        let n = self.points.len();
        // Pass 1: resolve indicator targets (z equal to an interpolation
        // point) exactly, and flatten every other target's differences into
        // one batch-inversion input.
        let mut indicator_slots: Vec<Option<usize>> = Vec::with_capacity(targets.len());
        let mut flat_differences: Vec<F> = Vec::new();
        for &z in targets {
            if let Some(index) = self.points.iter().position(|&p| p == z) {
                indicator_slots.push(Some(index));
            } else {
                indicator_slots.push(None);
                flat_differences.extend(self.points.iter().map(|&p| z - p));
            }
        }
        let inverses = F::batch_inverse(&flat_differences);
        // Pass 2: assemble ℓ_j(z) = w_j · Π_k (z − β_k) / (z − β_j) per
        // target from its slice of the shared inversion.
        let mut rows = Vec::with_capacity(targets.len());
        let mut offset = 0;
        for slot in indicator_slots {
            match slot {
                Some(index) => {
                    let mut indicator = vec![F::ZERO; n];
                    indicator[index] = F::ONE;
                    rows.push(indicator);
                }
                None => {
                    let differences = &flat_differences[offset..offset + n];
                    let full_product: F = differences.iter().copied().product();
                    rows.push(
                        inverses[offset..offset + n]
                            .iter()
                            .zip(self.weights.iter())
                            .map(|(&inverse_j, &weight_j)| full_product * inverse_j * weight_j)
                            .collect(),
                    );
                    offset += n;
                }
            }
        }
        rows
    }

    /// Returns the `j`-th basis monomial as an explicit polynomial (degree
    /// `n−1`). Used by tests and by the key-generation path that needs the
    /// full encoding matrix.
    pub fn basis_polynomial(&self, j: usize) -> Polynomial<F> {
        let mut numerator = Polynomial::constant(self.weights[j]);
        for (k, &beta_k) in self.points.iter().enumerate() {
            if k == j {
                continue;
            }
            let linear = Polynomial::from_coefficients(vec![-beta_k, F::ONE]);
            numerator = numerator.mul(&linear);
        }
        numerator
    }

    /// Interpolates the unique polynomial of degree `< n` passing through
    /// `(points[j], values[j])`.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the number of points.
    pub fn interpolate(&self, values: &[F]) -> Polynomial<F> {
        assert_eq!(
            values.len(),
            self.points.len(),
            "interpolation needs one value per point"
        );
        let mut result = Polynomial::zero();
        for (j, &value) in values.iter().enumerate() {
            if value.is_zero() {
                continue;
            }
            result = result.add(&self.basis_polynomial(j).scale(value));
        }
        result
    }
}

/// Convenience wrapper: evaluates the Lagrange basis built on `points` at `z`.
pub fn evaluate_basis_at<F: PrimeField>(points: &[F], z: F) -> Vec<F> {
    LagrangeBasis::new(points.to_vec()).evaluate_at(z)
}

/// Interpolates the unique polynomial of degree `< points.len()` through the
/// given `(point, value)` pairs.
pub fn interpolate<F: PrimeField>(points: &[F], values: &[F]) -> Polynomial<F> {
    LagrangeBasis::new(points.to_vec()).interpolate(values)
}

/// Interpolates and immediately evaluates at `target` without materializing
/// the polynomial — the core of the erasure decoder, where we interpolate
/// `f(u(z))` from the fastest verified workers and evaluate at the β-points.
pub fn interpolate_eval<F: PrimeField>(points: &[F], values: &[F], target: F) -> F {
    assert_eq!(
        points.len(),
        values.len(),
        "interpolate_eval length mismatch"
    );
    let basis_at_target = evaluate_basis_at(points, target);
    F::dot_product(values, &basis_at_target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::F25;
    use proptest::prelude::*;

    fn pts(values: &[u64]) -> Vec<F25> {
        values.iter().map(|&v| F25::from_u64(v)).collect()
    }

    #[test]
    fn basis_is_indicator_at_its_own_points() {
        let basis = LagrangeBasis::new(pts(&[1, 2, 3, 4]));
        for (j, &point) in basis.points().iter().enumerate() {
            let values = basis.evaluate_at(point);
            for (k, &value) in values.iter().enumerate() {
                let expected = if j == k { F25::ONE } else { F25::ZERO };
                assert_eq!(value, expected);
            }
        }
    }

    #[test]
    fn basis_values_sum_to_one_everywhere() {
        // Σ_j ℓ_j(z) = 1 because it interpolates the constant-1 polynomial.
        let basis = LagrangeBasis::new(pts(&[5, 9, 11, 200, 4321]));
        for z in [0u64, 7, 100, 999_999] {
            let sum: F25 = basis.evaluate_at(F25::from_u64(z)).into_iter().sum();
            assert_eq!(sum, F25::ONE);
        }
    }

    #[test]
    fn basis_polynomial_matches_pointwise_evaluation() {
        let basis = LagrangeBasis::new(pts(&[2, 4, 8]));
        for j in 0..3 {
            let poly = basis.basis_polynomial(j);
            for z in [0u64, 1, 3, 17, 1000] {
                let z = F25::from_u64(z);
                assert_eq!(poly.evaluate(z), basis.evaluate_at(z)[j]);
            }
        }
    }

    #[test]
    fn evaluate_at_many_matches_per_target_evaluation() {
        let basis = LagrangeBasis::new(pts(&[5, 9, 11, 200]));
        // A mix of ordinary targets and indicator targets (9 and 200 are
        // interpolation points), exercising the shared-inversion offsets.
        let targets = pts(&[0, 9, 7, 200, 999_999]);
        let rows = basis.evaluate_at_many(&targets);
        assert_eq!(rows.len(), targets.len());
        for (&z, row) in targets.iter().zip(rows.iter()) {
            assert_eq!(row, &basis.evaluate_at(z), "target {z}");
        }
        assert!(basis.evaluate_at_many(&[]).is_empty());
    }

    #[test]
    fn interpolation_recovers_known_polynomial() {
        // p(z) = 7 + 3z + z^2
        let p = Polynomial::from_coefficients(pts(&[7, 3, 1]));
        let points = pts(&[10, 20, 30]);
        let values = p.evaluate_many(&points);
        let recovered = interpolate(&points, &values);
        assert_eq!(recovered, p);
    }

    #[test]
    fn interpolate_eval_matches_full_interpolation() {
        let p = Polynomial::from_coefficients(pts(&[1, 2, 3, 4]));
        let points = pts(&[100, 200, 300, 400]);
        let values = p.evaluate_many(&points);
        let target = F25::from_u64(55);
        assert_eq!(
            interpolate_eval(&points, &values, target),
            p.evaluate(target)
        );
    }

    #[test]
    fn interpolation_through_single_point_is_constant() {
        let recovered = interpolate(&pts(&[42]), &pts(&[7]));
        assert_eq!(recovered, Polynomial::constant(F25::from_u64(7)));
    }

    #[test]
    #[should_panic(expected = "pairwise distinct")]
    fn duplicate_points_panic() {
        let _ = LagrangeBasis::new(pts(&[1, 2, 2]));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_basis_panics() {
        let _ = LagrangeBasis::<F25>::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "one value per point")]
    fn interpolation_length_mismatch_panics() {
        let basis = LagrangeBasis::new(pts(&[1, 2, 3]));
        let _ = basis.interpolate(&pts(&[1, 2]));
    }

    proptest! {
        #[test]
        fn prop_interpolation_round_trips(
            coefficients in proptest::collection::vec(0u64..F25::MODULUS, 1..8),
            offset in 1u64..1000,
        ) {
            let p = Polynomial::from_coefficients(
                coefficients.iter().map(|&c| F25::from_u64(c)).collect(),
            );
            let n = coefficients.len();
            // Distinct points offset..offset+n.
            let points: Vec<F25> = (0..n as u64).map(|i| F25::from_u64(offset + i)).collect();
            let values = p.evaluate_many(&points);
            let recovered = interpolate(&points, &values);
            prop_assert_eq!(recovered, p);
        }

        #[test]
        fn prop_any_subset_of_evaluations_decodes_low_degree_polynomial(
            coefficients in proptest::collection::vec(0u64..F25::MODULUS, 1..5),
            extra in 1usize..5,
        ) {
            // Evaluate at degree+1+extra points; any (degree+1)-subset recovers p.
            let p = Polynomial::from_coefficients(
                coefficients.iter().map(|&c| F25::from_u64(c)).collect(),
            );
            let needed = coefficients.len();
            let total = needed + extra;
            let points: Vec<F25> = (1..=total as u64).map(F25::from_u64).collect();
            let values = p.evaluate_many(&points);
            // Take the *last* `needed` evaluations (an arbitrary subset).
            let subset_points = &points[extra..];
            let subset_values = &values[extra..];
            let recovered = interpolate(subset_points, subset_values);
            prop_assert_eq!(recovered, p);
        }
    }
}
