//! Subproduct trees: fast multipoint evaluation and fast interpolation over
//! arbitrary point sets.
//!
//! The decoder's straggler path (AVCC §IV-B with missing workers) has to
//! interpolate `f(u)` from whichever worker subset survived — the surviving
//! α-points are *not* a full coset, so the full-coset inverse NTT does not
//! apply, and the dense Lagrange combination costs `O(K·R)` per coordinate.
//! The classical subproduct-tree algorithms (von zur Gathen & Gerhard,
//! *Modern Computer Algebra*, ch. 10) bring this down to `O(n log² n)`:
//!
//! * [`SubproductTree`] — the vanishing polynomials of every leaf-pair
//!   subset, built bottom-up with [`Polynomial::mul_fast`]: level 0 holds the
//!   monic linears `z − x_i`, each parent the product of its children, the
//!   root the vanishing polynomial `Z(z) = Π (z − x_i)` of the whole set.
//! * [`SubproductTree::evaluate`] — fast multipoint evaluation: reduce the
//!   input polynomial modulo the two child polynomials and recurse; at the
//!   leaves the remainders *are* the values `p(x_i)`.
//! * [`TreeInterpolator`] — fast interpolation: the barycentric weight of
//!   `x_i` is `1/Z'(x_i)` (one multipoint evaluation of the derivative plus
//!   one shared batch inversion, both amortized over every interpolation with
//!   the same points), and the interpolant `Σ_i y_i/Z'(x_i) · Z(z)/(z − x_i)`
//!   is assembled bottom-up: each node combines its children's partial
//!   interpolants `u` as `u_left·Z_right + u_right·Z_left`.
//!
//! Two cost refinements matter for the decoder:
//!
//! * **Cached sibling transforms.** The combine-up products always pair a
//!   *fresh* partial interpolant with a *fixed* child vanishing polynomial,
//!   so each two-child node stores its children's forward NTTs once; a
//!   combine step is then two forward transforms, one pointwise pass and
//!   one inverse transform instead of the generic three-plus-three of two
//!   independent multiplications.
//! * **Vector lanes.** [`TreeInterpolator::interpolate_vectors`] runs the
//!   combine-up with whole data blocks as coefficients (the same lane layout
//!   as [`NttPlan::forward_vectors`]), interpolating every coordinate of the
//!   worker vectors in one tree pass — this is the decoder's workhorse.
//!
//! Everything degrades gracefully on fields without NTT metadata (the
//! products fall back to schoolbook convolution), so the tree is usable — and
//! proptested — on all four moduli, not just Goldilocks.

use std::collections::BTreeMap;

use avcc_field::{slice_axpy, Fp, PrimeField, PrimeModulus};

use crate::dense::Polynomial;
use crate::fast::{div_rem_fast_pooled, mul_fast_pooled, PlanPool, NTT_MUL_THRESHOLD};
use crate::ntt::NttPlan;

/// Cached forward transforms of a node's two children, sized for the
/// combine-up products (`next_pow2` of the node's leaf count — the partial
/// interpolants have degree strictly below their subtree's leaf count, so the
/// products never wrap).
#[derive(Debug, Clone)]
struct NodeNtt<M: PrimeModulus> {
    /// `log2` of the transform size (a key into the tree's plan map).
    log_n: u32,
    /// Forward NTT of the left child's vanishing polynomial.
    left: Vec<Fp<M>>,
    /// Forward NTT of the right child's vanishing polynomial.
    right: Vec<Fp<M>>,
}

/// One node of the tree: the vanishing polynomial of the leaves below it,
/// plus the cached child transforms when the node was formed from two
/// children at NTT-worthy size.
#[derive(Debug, Clone)]
struct TreeNode<M: PrimeModulus> {
    poly: Polynomial<Fp<M>>,
    ntt: Option<NodeNtt<M>>,
}

/// A subproduct tree over a fixed set of distinct points.
#[derive(Debug, Clone)]
pub struct SubproductTree<M: PrimeModulus> {
    points: Vec<Fp<M>>,
    /// `levels[0]` holds one `z − x_i` per point (in point order); each
    /// higher level pairs neighbours (an odd trailing node is carried up
    /// unchanged); the top level holds the single root.
    levels: Vec<Vec<TreeNode<M>>>,
    /// Shared transform plans, keyed by `log2` size — pre-built for every
    /// size the build, descents and combine-ups can need, so no product or
    /// division in the tree's lifetime re-derives a twiddle table.
    plans: PlanPool<M>,
}

impl<M: PrimeModulus> SubproductTree<M> {
    /// Builds the tree over `points`.
    ///
    /// # Panics
    /// Panics if `points` is empty or contains duplicates (the vanishing
    /// polynomial of a multiset has zero derivative at a repeated point, so
    /// interpolation would be ill-defined).
    pub fn new(points: Vec<Fp<M>>) -> Self {
        assert!(
            !points.is_empty(),
            "subproduct tree needs at least one point"
        );
        let mut sorted: Vec<u64> = points.iter().map(|p| p.value()).collect();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "subproduct tree points must be pairwise distinct"
        );
        // Pre-build every plan the tree can touch: products while building
        // (result ≤ n+1 coefficients), remainders while descending
        // (division products ≤ n+1) and combine-ups while interpolating
        // (products ≤ n). One O(size) table each, amortized over everything
        // the tree ever does.
        let mut plans = BTreeMap::new();
        if M::TWO_ADICITY > 0 {
            let max_log = (points.len() + 1).next_power_of_two().trailing_zeros();
            let min_log = NTT_MUL_THRESHOLD.trailing_zeros();
            for log_n in min_log..=max_log.min(M::TWO_ADICITY) {
                plans.insert(log_n, NttPlan::<M>::new(log_n));
            }
        }
        let leaves: Vec<TreeNode<M>> = points
            .iter()
            .map(|&x| TreeNode {
                poly: Polynomial::from_coefficients(vec![-x, Fp::<M>::ONE]),
                ntt: None,
            })
            .collect();
        let mut levels = vec![leaves];
        while levels.last().expect("at least one level").len() > 1 {
            let previous = levels.last().expect("at least one level");
            let mut next = Vec::with_capacity(previous.len().div_ceil(2));
            let mut i = 0;
            while i < previous.len() {
                if i + 1 == previous.len() {
                    // Odd trailing node: carried up unchanged.
                    next.push(TreeNode {
                        poly: previous[i].poly.clone(),
                        ntt: None,
                    });
                } else {
                    next.push(Self::merge(&previous[i], &previous[i + 1], &mut plans));
                }
                i += 2;
            }
            levels.push(next);
        }
        SubproductTree {
            points,
            levels,
            plans,
        }
    }

    /// Forms a parent from two children: product polynomial plus, at
    /// NTT-worthy sizes, the cached child transforms for combine-up reuse.
    fn merge(left: &TreeNode<M>, right: &TreeNode<M>, plans: &mut PlanPool<M>) -> TreeNode<M> {
        let poly = mul_fast_pooled(&left.poly, &right.poly, Some(plans));
        let node_size = poly.degree().expect("vanishing polynomials are nonzero");
        let log_n = node_size.next_power_of_two().trailing_zeros();
        let ntt = (node_size >= NTT_MUL_THRESHOLD && M::TWO_ADICITY > 0 && log_n <= M::TWO_ADICITY)
            .then(|| {
                let plan = plans
                    .entry(log_n)
                    .or_insert_with(|| NttPlan::<M>::new(log_n));
                let n = plan.len();
                let mut left_transform = left.poly.coefficients().to_vec();
                left_transform.resize(n, Fp::<M>::ZERO);
                plan.forward(&mut left_transform);
                let mut right_transform = right.poly.coefficients().to_vec();
                right_transform.resize(n, Fp::<M>::ZERO);
                plan.forward(&mut right_transform);
                NodeNtt {
                    log_n,
                    left: left_transform,
                    right: right_transform,
                }
            });
        TreeNode { poly, ntt }
    }

    /// The points the tree was built over, in their original order.
    pub fn points(&self) -> &[Fp<M>] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` iff the tree is empty (never, for a constructed tree).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The vanishing polynomial `Z(z) = Π_i (z − x_i)` of the whole set.
    pub fn vanishing(&self) -> &Polynomial<Fp<M>> {
        &self.levels.last().expect("at least one level")[0].poly
    }

    /// Fast multipoint evaluation: `p(x_i)` for every tree point, in point
    /// order — `O(n log² n)` against Horner's `O(n·deg p)`.
    pub fn evaluate(&self, p: &Polynomial<Fp<M>>) -> Vec<Fp<M>> {
        let root = self.vanishing();
        let remainder = if p.coefficients().len() >= root.coefficients().len() {
            div_rem_fast_pooled(p, root, Some(&self.plans)).1
        } else {
            p.clone()
        };
        let mut values = vec![Fp::<M>::ZERO; self.points.len()];
        self.descend(self.levels.len() - 1, 0, remainder, &mut values);
        values
    }

    /// Pushes `remainder` (already reduced modulo this node's polynomial)
    /// down to the leaves below `(level, index)`.
    fn descend(&self, level: usize, index: usize, remainder: Polynomial<Fp<M>>, out: &mut [Fp<M>]) {
        if level == 0 {
            // Remainder modulo the monic linear z − x_i is the constant p(x_i).
            out[index] = remainder.coefficient(0);
            return;
        }
        let child_level = level - 1;
        let left = 2 * index;
        let right = left + 1;
        if right >= self.levels[child_level].len() {
            // Carried node: same polynomial one level down, remainder unchanged.
            self.descend(child_level, left, remainder, out);
            return;
        }
        let left_rem = div_rem_fast_pooled(
            &remainder,
            &self.levels[child_level][left].poly,
            Some(&self.plans),
        )
        .1;
        let right_rem = div_rem_fast_pooled(
            &remainder,
            &self.levels[child_level][right].poly,
            Some(&self.plans),
        )
        .1;
        self.descend(child_level, left, left_rem, out);
        self.descend(child_level, right, right_rem, out);
    }
}

/// A reusable fast interpolator over a fixed point set: the subproduct tree
/// plus the batch-inverted derivative values `1/Z'(x_i)` — everything that
/// does not depend on the interpolated values, so consecutive decodes with
/// the same surviving-worker set pay only the combine-up.
#[derive(Debug, Clone)]
pub struct TreeInterpolator<M: PrimeModulus> {
    tree: SubproductTree<M>,
    /// `1 / Z'(x_i)` in point order (the barycentric weights).
    inverse_derivative: Vec<Fp<M>>,
}

impl<M: PrimeModulus> TreeInterpolator<M> {
    /// Builds the interpolator (tree, derivative evaluation, one shared batch
    /// inversion) for the given distinct points.
    ///
    /// # Panics
    /// Panics if `points` is empty or contains duplicates.
    pub fn new(points: Vec<Fp<M>>) -> Self {
        Self::from_tree(SubproductTree::new(points))
    }

    /// Builds the interpolator from an existing tree.
    pub fn from_tree(tree: SubproductTree<M>) -> Self {
        let derivative = tree.vanishing().derivative();
        let derivative_values = tree.evaluate(&derivative);
        // Distinct points make Z'(x_i) = Π_{j≠i}(x_i − x_j) nonzero, so the
        // batch inversion cannot hit a zero.
        let inverse_derivative = <Fp<M> as PrimeField>::batch_inverse(&derivative_values);
        TreeInterpolator {
            tree,
            inverse_derivative,
        }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &SubproductTree<M> {
        &self.tree
    }

    /// The interpolation points, in their original order.
    pub fn points(&self) -> &[Fp<M>] {
        self.tree.points()
    }

    /// Interpolates the unique polynomial of degree `< n` with
    /// `p(x_i) = values[i]`.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the number of points.
    pub fn interpolate(&self, values: &[Fp<M>]) -> Polynomial<Fp<M>> {
        let lanes: Vec<&[Fp<M>]> = values.chunks(1).collect();
        let coefficient_lanes = self.interpolate_vectors(&lanes);
        Polynomial::from_coefficients(coefficient_lanes.into_iter().map(|lane| lane[0]).collect())
    }

    /// Vector-lane interpolation: `values[i]` is a whole data block, and the
    /// returned `n` lanes are the coefficient *vectors* of the per-coordinate
    /// interpolants (lane `d`, coordinate `c` is the degree-`d` coefficient
    /// of the polynomial through `(x_i, values[i][c])`). One tree pass
    /// interpolates every coordinate at once — the decoder's straggler path.
    /// Blocks are borrowed (`AsRef`), so callers holding `&[Vec<…>]` or
    /// `&[&[…]]` pass them without copying.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the number of points or the
    /// blocks disagree in length.
    pub fn interpolate_vectors<V: AsRef<[Fp<M>]>>(&self, values: &[V]) -> Vec<Vec<Fp<M>>> {
        let n = self.tree.len();
        assert_eq!(values.len(), n, "interpolation needs one value per point");
        let width = values[0].as_ref().len();
        // Leaf lanes: the barycentric weights y_i / Z'(x_i), one single-lane
        // partial interpolant (degree < 1) per leaf.
        let mut ups: Vec<Vec<Vec<Fp<M>>>> = values
            .iter()
            .zip(self.inverse_derivative.iter())
            .map(|(block, &weight)| {
                let block = block.as_ref();
                assert_eq!(block.len(), width, "interpolated blocks must share a width");
                vec![block.iter().map(|&v| v * weight).collect()]
            })
            .collect();
        // Combine upward: at each two-child node,
        //   up = up_left·Z_right + up_right·Z_left,
        // a polynomial of degree < node leaf count (lanes = coefficients).
        for level in 1..self.tree.levels.len() {
            let nodes = &self.tree.levels[level];
            let mut next_ups: Vec<Vec<Vec<Fp<M>>>> = Vec::with_capacity(nodes.len());
            let mut pairs = ups.into_iter();
            for node in nodes {
                let left_up = pairs.next().expect("one partial interpolant per child");
                let Some(right_up) = pairs.next() else {
                    // Carried node: partial interpolant passes through.
                    next_ups.push(left_up);
                    break;
                };
                let child_level = &self.tree.levels[level - 1];
                let left_index = 2 * (next_ups.len());
                let left_poly = &child_level[left_index].poly;
                let right_poly = &child_level[left_index + 1].poly;
                next_ups.push(self.combine(node, left_up, right_up, left_poly, right_poly, width));
            }
            ups = next_ups;
        }
        let mut root = ups.pop().expect("the root has a partial interpolant");
        root.resize(n, vec![Fp::<M>::ZERO; width]);
        root
    }

    /// One combine-up step: `up_left·Z_right + up_right·Z_left`, through the
    /// node's cached child transforms when present (two forward transforms,
    /// one pointwise scalar-×-lane pass, one inverse transform), schoolbook
    /// lane convolution otherwise.
    fn combine(
        &self,
        node: &TreeNode<M>,
        left_up: Vec<Vec<Fp<M>>>,
        right_up: Vec<Vec<Fp<M>>>,
        left_poly: &Polynomial<Fp<M>>,
        right_poly: &Polynomial<Fp<M>>,
        width: usize,
    ) -> Vec<Vec<Fp<M>>> {
        let node_size = node
            .poly
            .degree()
            .expect("vanishing polynomials are nonzero");
        if let Some(ntt) = &node.ntt {
            let plan = self.plan(ntt.log_n);
            let n = plan.len();
            let zero_lane = vec![Fp::<M>::ZERO; width];
            let mut left_lanes = left_up;
            left_lanes.resize(n, zero_lane.clone());
            let mut right_lanes = right_up;
            right_lanes.resize(n, zero_lane);
            plan.forward_vectors(&mut left_lanes);
            plan.forward_vectors(&mut right_lanes);
            // Pointwise: out_j = L_j·Ẑ_right[j] + R_j·Ẑ_left[j].
            for ((left_lane, right_lane), (&right_tf, &left_tf)) in left_lanes
                .iter_mut()
                .zip(right_lanes.iter())
                .zip(ntt.right.iter().zip(ntt.left.iter()))
            {
                for value in left_lane.iter_mut() {
                    *value *= right_tf;
                }
                slice_axpy(left_lane, left_tf, right_lane);
            }
            plan.inverse_vectors(&mut left_lanes);
            left_lanes.truncate(node_size);
            left_lanes
        } else {
            // Schoolbook lane convolution (small nodes, or fields without
            // NTT metadata): out[a+b] += Z[b]·up[a].
            let mut out = vec![vec![Fp::<M>::ZERO; width]; node_size];
            for (scalar_poly, up) in [(right_poly, &left_up), (left_poly, &right_up)] {
                for (b, &coefficient) in scalar_poly.coefficients().iter().enumerate() {
                    if coefficient.is_zero() {
                        continue;
                    }
                    for (a, lane) in up.iter().enumerate() {
                        slice_axpy(&mut out[a + b], coefficient, lane);
                    }
                }
            }
            out
        }
    }

    /// Looks up a shared plan by `log2` size (always present: `merge` created
    /// it when it cached the node transforms).
    fn plan(&self, log_n: u32) -> &NttPlan<M> {
        self.tree
            .plans
            .get(&log_n)
            .expect("cached node transforms imply a cached plan")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lagrange::LagrangeBasis;
    use avcc_field::{F25, F64, P25, P64};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_points(n: usize, seed: u64) -> Vec<F64> {
        // Distinct by construction: offset + i for random offset.
        let mut rng = StdRng::seed_from_u64(seed);
        let offset: F64 = avcc_field::random_vector(&mut rng, 1)[0];
        (0..n as u64).map(|i| offset + F64::from_u64(i)).collect()
    }

    #[test]
    fn vanishing_polynomial_is_monic_and_vanishes() {
        for n in [1usize, 2, 3, 7, 8, 33, 64] {
            let points = random_points(n, n as u64);
            let tree = SubproductTree::new(points.clone());
            let vanishing = tree.vanishing();
            assert_eq!(vanishing.degree(), Some(n));
            assert_eq!(vanishing.coefficient(n), F64::ONE);
            for &x in &points {
                assert_eq!(vanishing.evaluate(x), F64::ZERO);
            }
        }
    }

    #[test]
    fn multipoint_evaluation_matches_horner() {
        for n in [1usize, 2, 5, 16, 40, 65] {
            let points = random_points(n, 100 + n as u64);
            let tree = SubproductTree::new(points.clone());
            let mut rng = StdRng::seed_from_u64(999);
            let p: Polynomial<F64> =
                Polynomial::from_coefficients(avcc_field::random_vector(&mut rng, 80));
            assert_eq!(tree.evaluate(&p), p.evaluate_many(&points), "n = {n}");
        }
    }

    #[test]
    fn interpolation_matches_lagrange_basis() {
        for n in [1usize, 2, 3, 9, 31, 64, 65] {
            let points = random_points(n, 200 + n as u64);
            let mut rng = StdRng::seed_from_u64(n as u64);
            let values: Vec<F64> = avcc_field::random_vector(&mut rng, n);
            let interpolator = TreeInterpolator::new(points.clone());
            let tree_result = interpolator.interpolate(&values);
            let dense_result = LagrangeBasis::new(points).interpolate(&values);
            assert_eq!(tree_result, dense_result, "n = {n}");
        }
    }

    #[test]
    fn vector_interpolation_matches_scalar_per_coordinate() {
        let n = 48;
        let width = 5;
        let points = random_points(n, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let blocks: Vec<Vec<F64>> = (0..n)
            .map(|_| avcc_field::random_vector(&mut rng, width))
            .collect();
        let interpolator = TreeInterpolator::new(points);
        let lanes = interpolator.interpolate_vectors(&blocks);
        assert_eq!(lanes.len(), n);
        for coordinate in 0..width {
            let scalar_values: Vec<F64> = blocks.iter().map(|b| b[coordinate]).collect();
            let scalar_poly = interpolator.interpolate(&scalar_values);
            for (degree, lane) in lanes.iter().enumerate() {
                assert_eq!(
                    lane[coordinate],
                    scalar_poly.coefficient(degree),
                    "coordinate {coordinate}, degree {degree}"
                );
            }
        }
    }

    #[test]
    fn works_on_fields_without_ntt_metadata() {
        // P25 declares no two-adicity: every product falls back to
        // schoolbook, the algorithms stay correct.
        let points: Vec<F25> = (1..=40).map(F25::from_u64).collect();
        let values: Vec<F25> = (0..40u64).map(|i| F25::from_u64(i * i + 3)).collect();
        let interpolator = TreeInterpolator::new(points.clone());
        assert_eq!(
            interpolator.interpolate(&values),
            LagrangeBasis::new(points).interpolate(&values)
        );
    }

    #[test]
    fn single_point_interpolation_is_constant() {
        let interpolator = TreeInterpolator::<P64>::new(vec![F64::from_u64(42)]);
        let p = interpolator.interpolate(&[F64::from_u64(7)]);
        assert_eq!(p, Polynomial::constant(F64::from_u64(7)));
    }

    #[test]
    #[should_panic(expected = "pairwise distinct")]
    fn duplicate_points_panic() {
        let _ = SubproductTree::<P64>::new(vec![F64::ONE, F64::ONE]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_tree_panics() {
        let _ = SubproductTree::<P25>::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "one value per point")]
    fn interpolation_length_mismatch_panics() {
        let interpolator = TreeInterpolator::<P64>::new(random_points(4, 1));
        let _ = interpolator.interpolate(&[F64::ONE]);
    }
}
