//! Berlekamp–Welch error-correcting decoding of Reed–Solomon (evaluation)
//! codes.
//!
//! The LCC baseline (paper §II-A, eq. 1) tolerates `M` Byzantine workers by
//! Reed–Solomon decoding the worker evaluations of `f(u(z))`: the polynomial
//! has degree `≤ (K+T−1)·deg f`, the master receives `N − S` evaluations of
//! which up to `M` may be arbitrary garbage, and correcting `M` errors
//! requires `2M` redundant evaluations — which is exactly why a Byzantine
//! worker costs LCC twice what a straggler does. This module implements that
//! decoder so the baseline's cost is real rather than assumed.
//!
//! Given evaluations `y_i = P(x_i)` (with at most `e` of them wrong) of a
//! polynomial `P` with `k` coefficients, and `n ≥ k + 2e` evaluation points,
//! Berlekamp–Welch finds a monic *error locator* `E(z)` of degree `e` and a
//! polynomial `Q(z)` of degree `< k + e` satisfying `Q(x_i) = y_i E(x_i)` for
//! every `i`; then `P = Q / E` exactly. The linear system is solved by
//! Gaussian elimination (`O(n³)`, tiny `n` here). Workers whose evaluation
//! disagrees with the decoded polynomial are reported as error positions —
//! this is how the LCC baseline identifies Byzantine workers.

use avcc_field::PrimeField;

use crate::dense::Polynomial;

/// Errors reported by the Reed–Solomon decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsDecodeError {
    /// Fewer evaluations than unknowns: `n < k + 2·max_errors`.
    NotEnoughEvaluations {
        /// Number of evaluations provided.
        provided: usize,
        /// Number required for the requested error tolerance.
        required: usize,
    },
    /// No consistent `(Q, E)` pair exists — more than `max_errors` evaluations
    /// are corrupted.
    TooManyErrors,
    /// The number of values does not match the number of evaluation points.
    LengthMismatch {
        /// Number of evaluation points configured.
        points: usize,
        /// Number of values supplied.
        values: usize,
    },
}

impl std::fmt::Display for RsDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsDecodeError::NotEnoughEvaluations { provided, required } => write!(
                f,
                "not enough evaluations: got {provided}, need at least {required}"
            ),
            RsDecodeError::TooManyErrors => {
                write!(f, "more corrupted evaluations than the decoder can correct")
            }
            RsDecodeError::LengthMismatch { points, values } => write!(
                f,
                "evaluation count mismatch: {points} points but {values} values"
            ),
        }
    }
}

impl std::error::Error for RsDecodeError {}

/// The result of a successful error-correcting decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsDecoded<F: PrimeField> {
    /// The recovered message polynomial `P`.
    pub polynomial: Polynomial<F>,
    /// Indices (into the evaluation-point array) whose supplied value
    /// disagreed with `P` — i.e. the detected Byzantine workers.
    pub error_positions: Vec<usize>,
}

/// A Berlekamp–Welch decoder bound to a fixed set of evaluation points and a
/// fixed message length (number of coefficients of the encoded polynomial).
#[derive(Debug, Clone)]
pub struct BerlekampWelch<F: PrimeField> {
    points: Vec<F>,
    message_length: usize,
}

impl<F: PrimeField> BerlekampWelch<F> {
    /// Creates a decoder for polynomials with `message_length` coefficients
    /// (degree `≤ message_length − 1`) evaluated at `points`.
    ///
    /// # Panics
    /// Panics if `message_length` is zero or the points are not distinct.
    pub fn new(points: Vec<F>, message_length: usize) -> Self {
        assert!(message_length > 0, "message length must be positive");
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                assert!(points[i] != points[j], "evaluation points must be distinct");
            }
        }
        BerlekampWelch {
            points,
            message_length,
        }
    }

    /// The evaluation points.
    pub fn points(&self) -> &[F] {
        &self.points
    }

    /// The number of message coefficients `k`.
    pub fn message_length(&self) -> usize {
        self.message_length
    }

    /// The maximum number of errors correctable from `available` evaluations:
    /// `⌊(available − k) / 2⌋`.
    pub fn correctable_errors(&self, available: usize) -> usize {
        available.saturating_sub(self.message_length) / 2
    }

    /// Decodes the message polynomial from `values[i] = P(points[i])`
    /// (possibly corrupted in up to `max_errors` positions).
    pub fn decode(&self, values: &[F], max_errors: usize) -> Result<RsDecoded<F>, RsDecodeError> {
        if values.len() != self.points.len() {
            return Err(RsDecodeError::LengthMismatch {
                points: self.points.len(),
                values: values.len(),
            });
        }
        let required = self.message_length + 2 * max_errors;
        if self.points.len() < required {
            return Err(RsDecodeError::NotEnoughEvaluations {
                provided: self.points.len(),
                required,
            });
        }

        // Try the requested error budget first, then smaller budgets: when the
        // actual number of errors is smaller, the degree-e monic locator still
        // exists, but the linear system can become singular in unlucky
        // configurations; falling back is both standard and cheap at this size.
        for error_budget in (0..=max_errors).rev() {
            if let Some(decoded) = self.try_decode_with_budget(values, error_budget) {
                return Ok(decoded);
            }
        }
        Err(RsDecodeError::TooManyErrors)
    }

    /// Attempts a decode assuming exactly `error_budget` errors; returns
    /// `None` when the resulting system is inconsistent or `Q` is not
    /// divisible by `E`.
    fn try_decode_with_budget(&self, values: &[F], error_budget: usize) -> Option<RsDecoded<F>> {
        let k = self.message_length;
        let e = error_budget;
        let n = self.points.len();
        let q_len = k + e; // number of unknown Q coefficients
        let unknowns = q_len + e; // E is monic of degree e: e unknown coefficients

        // Build the n × unknowns system:
        //   Σ_j q_j x_i^j − y_i Σ_{j<e} E_j x_i^j = y_i x_i^e
        let mut matrix = vec![F::ZERO; n * unknowns];
        let mut rhs = vec![F::ZERO; n];
        for (i, (&x, &y)) in self.points.iter().zip(values.iter()).enumerate() {
            let mut power = F::ONE;
            for j in 0..q_len {
                matrix[i * unknowns + j] = power;
                power *= x;
            }
            let mut power = F::ONE;
            for j in 0..e {
                matrix[i * unknowns + q_len + j] = -(y * power);
                power *= x;
            }
            // power is now x^e
            rhs[i] = y * power;
        }

        let solution = solve_rectangular(&matrix, &rhs, n, unknowns)?;
        let q_polynomial = Polynomial::from_coefficients(solution[..q_len].to_vec());
        let mut locator_coefficients = solution[q_len..].to_vec();
        locator_coefficients.push(F::ONE); // monic degree-e locator
        let locator = Polynomial::from_coefficients(locator_coefficients);

        let (message, remainder) = if locator.degree() == Some(0) {
            (q_polynomial.clone(), Polynomial::zero())
        } else {
            q_polynomial.div_rem(&locator)
        };
        if !remainder.is_zero() {
            return None;
        }
        if message.degree().is_some_and(|d| d >= k) {
            return None;
        }

        // Identify disagreeing positions and make sure they fit the budget.
        let error_positions: Vec<usize> = self
            .points
            .iter()
            .zip(values.iter())
            .enumerate()
            .filter(|(_, (&x, &y))| message.evaluate(x) != y)
            .map(|(i, _)| i)
            .collect();
        if error_positions.len() > error_budget {
            return None;
        }
        Some(RsDecoded {
            polynomial: message,
            error_positions,
        })
    }
}

/// Solves the (possibly rectangular, typically overdetermined) system
/// `A x = b` with `rows ≥ cols`, returning one solution with free variables
/// set to zero, or `None` if the system is inconsistent.
///
/// The elimination is *division-free*: instead of normalizing each pivot row
/// as it is found (one [`PrimeField::inverse`] per pivot — a Fermat
/// exponentiation on every modulus without a Montgomery chain backend), the
/// forward sweep multiplies through (`row ← p·row − a·pivot_row`, which only
/// rescales rows by nonzero constants and so preserves the pivot structure
/// and the solution set), and the back-substitution divides by all pivots at
/// once through one shared [`PrimeField::batch_inverse`] — the
/// Montgomery-chain-routed API on moduli that opt in.
fn solve_rectangular<F: PrimeField>(
    matrix: &[F],
    rhs: &[F],
    rows: usize,
    cols: usize,
) -> Option<Vec<F>> {
    let width = cols + 1;
    let mut augmented = vec![F::ZERO; rows * width];
    for row in 0..rows {
        augmented[row * width..row * width + cols]
            .copy_from_slice(&matrix[row * cols..(row + 1) * cols]);
        augmented[row * width + cols] = rhs[row];
    }

    // Forward sweep to row-echelon form, no divisions.
    let mut pivot_columns = Vec::new();
    let mut pivot_row = 0usize;
    for column in 0..cols {
        if pivot_row >= rows {
            break;
        }
        let Some(found) = (pivot_row..rows).find(|&r| !augmented[r * width + column].is_zero())
        else {
            continue;
        };
        if found != pivot_row {
            for c in 0..width {
                augmented.swap(found * width + c, pivot_row * width + c);
            }
        }
        let pivot = augmented[pivot_row * width + column];
        for r in (pivot_row + 1)..rows {
            let factor = augmented[r * width + column];
            if factor.is_zero() {
                continue;
            }
            for c in column..width {
                let value = augmented[pivot_row * width + c];
                augmented[r * width + c] = pivot * augmented[r * width + c] - factor * value;
            }
        }
        pivot_columns.push(column);
        pivot_row += 1;
    }

    // Consistency: every all-zero row must have zero RHS.
    for row in pivot_row..rows {
        let all_zero = (0..cols).all(|c| augmented[row * width + c].is_zero());
        if all_zero && !augmented[row * width + cols].is_zero() {
            return None;
        }
    }

    // Back-substitution with free variables at zero: one batch inversion
    // covers every pivot.
    let pivot_values: Vec<F> = pivot_columns
        .iter()
        .enumerate()
        .map(|(row, &column)| augmented[row * width + column])
        .collect();
    let pivot_inverses = F::batch_inverse(&pivot_values);
    let mut solution = vec![F::ZERO; cols];
    for (row, &column) in pivot_columns.iter().enumerate().rev() {
        // x_column = (rhs_row − Σ_{c > column} a_row,c · x_c) / pivot; the
        // trailing sum runs through the lazy-reduction dot kernel.
        let tail = F::dot_product(
            &augmented[row * width + column + 1..row * width + cols],
            &solution[column + 1..cols],
        );
        solution[column] = (augmented[row * width + cols] - tail) * pivot_inverses[row];
    }
    Some(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::F25;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn poly(coefficients: &[u64]) -> Polynomial<F25> {
        Polynomial::from_coefficients(coefficients.iter().map(|&c| F25::from_u64(c)).collect())
    }

    fn points(n: usize) -> Vec<F25> {
        (1..=n as u64).map(F25::from_u64).collect()
    }

    #[test]
    fn decodes_clean_evaluations() {
        let p = poly(&[3, 1, 4, 1]);
        let xs = points(8);
        let values = p.evaluate_many(&xs);
        let decoder = BerlekampWelch::new(xs, 4);
        let decoded = decoder.decode(&values, 2).unwrap();
        assert_eq!(decoded.polynomial, p);
        assert!(decoded.error_positions.is_empty());
    }

    #[test]
    fn corrects_single_error_and_reports_position() {
        let p = poly(&[7, 7, 7]);
        let xs = points(7);
        let mut values = p.evaluate_many(&xs);
        values[2] += F25::from_u64(12345);
        let decoder = BerlekampWelch::new(xs, 3);
        let decoded = decoder.decode(&values, 2).unwrap();
        assert_eq!(decoded.polynomial, p);
        assert_eq!(decoded.error_positions, vec![2]);
    }

    #[test]
    fn corrects_two_errors() {
        let p = poly(&[5, 0, 2, 9]);
        let xs = points(10);
        let mut values = p.evaluate_many(&xs);
        values[0] = F25::from_u64(1);
        values[7] = F25::from_u64(99);
        let decoder = BerlekampWelch::new(xs, 4);
        let decoded = decoder.decode(&values, 3).unwrap();
        assert_eq!(decoded.polynomial, p);
        assert_eq!(decoded.error_positions, vec![0, 7]);
    }

    #[test]
    fn too_many_errors_is_detected() {
        let p = poly(&[1, 2, 3]);
        let xs = points(7);
        let mut values = p.evaluate_many(&xs);
        // Budget allows ⌊(7-3)/2⌋ = 2 errors; inject 3.
        values[0] += F25::ONE;
        values[1] += F25::ONE;
        values[2] += F25::ONE;
        let decoder = BerlekampWelch::new(xs, 3);
        match decoder.decode(&values, 2) {
            Err(RsDecodeError::TooManyErrors) => {}
            Ok(decoded) => {
                // If a codeword within distance 2 exists it must not be p.
                assert_ne!(decoded.polynomial, p);
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_when_not_enough_evaluations() {
        let xs = points(4);
        let decoder = BerlekampWelch::new(xs, 3);
        let values = vec![F25::ZERO; 4];
        assert_eq!(
            decoder.decode(&values, 2),
            Err(RsDecodeError::NotEnoughEvaluations {
                provided: 4,
                required: 7
            })
        );
    }

    #[test]
    fn rejects_length_mismatch() {
        let decoder = BerlekampWelch::new(points(5), 2);
        let values = vec![F25::ZERO; 4];
        assert_eq!(
            decoder.decode(&values, 1),
            Err(RsDecodeError::LengthMismatch {
                points: 5,
                values: 4
            })
        );
    }

    #[test]
    fn correctable_errors_formula() {
        let decoder = BerlekampWelch::new(points(12), 9);
        assert_eq!(decoder.correctable_errors(12), 1);
        assert_eq!(decoder.correctable_errors(11), 1);
        assert_eq!(decoder.correctable_errors(10), 0);
    }

    #[test]
    fn zero_error_budget_decodes_exactly() {
        let p = poly(&[11, 22]);
        let xs = points(2);
        let values = p.evaluate_many(&xs);
        let decoder = BerlekampWelch::new(xs, 2);
        let decoded = decoder.decode(&values, 0).unwrap();
        assert_eq!(decoded.polynomial, p);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_points_panic() {
        let _ = BerlekampWelch::<F25>::new(vec![F25::ONE, F25::ONE], 1);
    }

    #[test]
    fn solve_rectangular_division_free_elimination_solves_and_rejects() {
        // Consistent overdetermined system: x = 3, y = 5 (third row is the
        // sum of the first two). The division-free sweep plus the single
        // batch-inverted back-substitution must recover the exact solution.
        let f = F25::from_u64;
        let matrix = vec![
            f(2),
            f(1), // 2x + y  = 11
            f(1),
            f(4), // x + 4y  = 23
            f(3),
            f(5), // 3x + 5y = 34
        ];
        let rhs = vec![f(11), f(23), f(34)];
        let solution = solve_rectangular(&matrix, &rhs, 3, 2).unwrap();
        assert_eq!(solution, vec![f(3), f(5)]);

        // Perturbing the dependent row's RHS makes the system inconsistent.
        let bad_rhs = vec![f(11), f(23), f(35)];
        assert_eq!(solve_rectangular(&matrix, &bad_rhs, 3, 2), None);

        // Rank-deficient but consistent: free variable pinned to zero.
        let singular = vec![f(1), f(2), f(2), f(4)];
        let singular_rhs = vec![f(5), f(10)];
        let solution = solve_rectangular(&singular, &singular_rhs, 2, 2).unwrap();
        assert_eq!(solution, vec![f(5), F25::ZERO]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_decodes_with_random_errors(
            seed in any::<u64>(),
            degree in 0usize..5,
            extra in 0usize..4,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let k = degree + 1;
            let max_errors = 2usize;
            let n = k + 2 * max_errors + extra;
            let coefficients: Vec<F25> = (0..k)
                .map(|_| F25::from_u64(rng.gen_range(0..F25::MODULUS)))
                .collect();
            let p = Polynomial::from_coefficients(coefficients);
            let xs = points(n);
            let mut values = p.evaluate_many(&xs);
            // Corrupt up to max_errors distinct positions with nonzero deltas.
            let error_count = rng.gen_range(0..=max_errors);
            let mut corrupted = std::collections::BTreeSet::new();
            while corrupted.len() < error_count {
                corrupted.insert(rng.gen_range(0..n));
            }
            for &index in &corrupted {
                values[index] += F25::from_u64(rng.gen_range(1..F25::MODULUS));
            }
            let decoder = BerlekampWelch::new(xs, k);
            let decoded = decoder.decode(&values, max_errors).unwrap();
            prop_assert_eq!(decoded.polynomial, p);
            let reported: std::collections::BTreeSet<usize> =
                decoded.error_positions.into_iter().collect();
            prop_assert_eq!(reported, corrupted);
        }
    }
}
