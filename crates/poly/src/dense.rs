//! Dense univariate polynomials over a prime field.
//!
//! Coefficients are stored in ascending-degree order (`coefficients[i]` is the
//! coefficient of `z^i`). The representation is kept *normalized*: the leading
//! coefficient is never zero (the zero polynomial has an empty coefficient
//! vector and degree `None`).

use avcc_field::PrimeField;

/// A dense univariate polynomial with coefficients in ascending-degree order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polynomial<F: PrimeField> {
    coefficients: Vec<F>,
}

impl<F: PrimeField> Polynomial<F> {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial {
            coefficients: Vec::new(),
        }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: F) -> Self {
        Self::from_coefficients(vec![c])
    }

    /// Builds a polynomial from ascending-degree coefficients, trimming
    /// trailing zeros so the representation is normalized.
    pub fn from_coefficients(mut coefficients: Vec<F>) -> Self {
        while coefficients.last().is_some_and(|c| c.is_zero()) {
            coefficients.pop();
        }
        Polynomial { coefficients }
    }

    /// The monomial `c · z^degree`.
    pub fn monomial(c: F, degree: usize) -> Self {
        if c.is_zero() {
            return Self::zero();
        }
        let mut coefficients = vec![F::ZERO; degree + 1];
        coefficients[degree] = c;
        Polynomial { coefficients }
    }

    /// Degree of the polynomial, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        if self.coefficients.is_empty() {
            None
        } else {
            Some(self.coefficients.len() - 1)
        }
    }

    /// `true` iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coefficients.is_empty()
    }

    /// The ascending-degree coefficient slice.
    pub fn coefficients(&self) -> &[F] {
        &self.coefficients
    }

    /// The coefficient of `z^i` (zero beyond the degree).
    pub fn coefficient(&self, i: usize) -> F {
        self.coefficients.get(i).copied().unwrap_or(F::ZERO)
    }

    /// Evaluates the polynomial at `point` using Horner's rule.
    pub fn evaluate(&self, point: F) -> F {
        let mut accumulator = F::ZERO;
        for &coefficient in self.coefficients.iter().rev() {
            accumulator = accumulator * point + coefficient;
        }
        accumulator
    }

    /// Evaluates the polynomial at every point of `points`.
    pub fn evaluate_many(&self, points: &[F]) -> Vec<F> {
        points.iter().map(|&p| self.evaluate(p)).collect()
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Self) -> Self {
        let len = self.coefficients.len().max(other.coefficients.len());
        let mut coefficients = Vec::with_capacity(len);
        for i in 0..len {
            coefficients.push(self.coefficient(i) + other.coefficient(i));
        }
        Self::from_coefficients(coefficients)
    }

    /// Polynomial subtraction `self − other`.
    pub fn sub(&self, other: &Self) -> Self {
        let len = self.coefficients.len().max(other.coefficients.len());
        let mut coefficients = Vec::with_capacity(len);
        for i in 0..len {
            coefficients.push(self.coefficient(i) - other.coefficient(i));
        }
        Self::from_coefficients(coefficients)
    }

    /// Schoolbook polynomial multiplication (the degrees involved in AVCC are
    /// tiny — at most `(K+T−1)·deg f` ≈ tens — so FFT multiplication is not
    /// warranted). Each output coefficient is one convolution window,
    /// computed as a dot product against a reversed copy of `other` so the
    /// sum-of-products runs through [`PrimeField::dot_product`] and inherits
    /// lazy reduction — this sits under the Berlekamp–Welch `Q/E` chains.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let (a, b) = (&self.coefficients, &other.coefficients);
        let (n, m) = (a.len(), b.len());
        let reversed_b: Vec<F> = b.iter().rev().copied().collect();
        let coefficients = (0..n + m - 1)
            .map(|k| {
                // coefficient k = Σ_i a[i]·b[k−i] over the valid i-window;
                // with b reversed both operand windows are contiguous and
                // ascending.
                let lo = (k + 1).saturating_sub(m);
                let hi = (k + 1).min(n);
                // lo ≥ k+1−m keeps this index non-negative.
                let offset = m - 1 + lo - k;
                F::dot_product(&a[lo..hi], &reversed_b[offset..offset + (hi - lo)])
            })
            .collect();
        Self::from_coefficients(coefficients)
    }

    /// Multiplies every coefficient by the scalar `c`.
    pub fn scale(&self, c: F) -> Self {
        Self::from_coefficients(self.coefficients.iter().map(|&x| x * c).collect())
    }

    /// The formal derivative `p'(z) = Σ_i i·p_i·z^{i−1}`.
    ///
    /// Used by the subproduct-tree interpolation: the barycentric weight of
    /// point `x_i` under the vanishing polynomial `Z` is `1 / Z'(x_i)`.
    pub fn derivative(&self) -> Self {
        let coefficients = self
            .coefficients
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| c * F::from_u64(i as u64))
            .collect();
        Self::from_coefficients(coefficients)
    }

    /// Polynomial long division, returning `(quotient, remainder)` such that
    /// `self = quotient · divisor + remainder` with
    /// `deg remainder < deg divisor`.
    ///
    /// # Panics
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        if self.is_zero() || self.coefficients.len() < divisor.coefficients.len() {
            return (Self::zero(), self.clone());
        }
        let divisor_degree = divisor.coefficients.len() - 1;
        let leading_inverse = divisor.coefficients[divisor_degree].inverse();
        let mut remainder = self.coefficients.clone();
        let quotient_len = remainder.len() - divisor_degree;
        let mut quotient = vec![F::ZERO; quotient_len];
        for step in (0..quotient_len).rev() {
            let factor = remainder[step + divisor_degree] * leading_inverse;
            quotient[step] = factor;
            if factor.is_zero() {
                continue;
            }
            for (offset, &d) in divisor.coefficients.iter().enumerate() {
                remainder[step + offset] -= factor * d;
            }
        }
        (
            Self::from_coefficients(quotient),
            Self::from_coefficients(remainder),
        )
    }

    /// Returns the composition with a linear map of the data blocks: given
    /// per-coefficient vectors it is often more convenient to evaluate many
    /// polynomials that share evaluation points. This helper evaluates a
    /// *vector-valued* polynomial whose `i`-th coefficient is
    /// `coefficient_vectors[i]` (all the same length) at `point`.
    pub fn evaluate_vector_valued(coefficient_vectors: &[Vec<F>], point: F) -> Vec<F> {
        let Some(first) = coefficient_vectors.first() else {
            return Vec::new();
        };
        let width = first.len();
        let mut accumulator = vec![F::ZERO; width];
        for coefficients in coefficient_vectors.iter().rev() {
            assert_eq!(
                coefficients.len(),
                width,
                "vector-valued polynomial coefficients must share a width"
            );
            for (slot, &c) in accumulator.iter_mut().zip(coefficients.iter()) {
                *slot = *slot * point + c;
            }
        }
        accumulator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::F25;
    use proptest::prelude::*;

    fn poly(coeffs: &[i64]) -> Polynomial<F25> {
        Polynomial::from_coefficients(coeffs.iter().map(|&c| F25::from_i64(c)).collect())
    }

    #[test]
    fn zero_polynomial_has_no_degree() {
        assert_eq!(Polynomial::<F25>::zero().degree(), None);
        assert!(poly(&[0, 0, 0]).is_zero());
    }

    #[test]
    fn from_coefficients_trims_trailing_zeros() {
        let p = poly(&[1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coefficients().len(), 2);
    }

    #[test]
    fn evaluation_uses_horner_correctly() {
        // p(z) = 3 + 2z + z^2, p(4) = 3 + 8 + 16 = 27
        let p = poly(&[3, 2, 1]);
        assert_eq!(p.evaluate(F25::from_u64(4)), F25::from_u64(27));
    }

    #[test]
    fn constant_polynomial_evaluates_to_constant() {
        let p = Polynomial::constant(F25::from_u64(7));
        assert_eq!(p.evaluate(F25::from_u64(999)), F25::from_u64(7));
    }

    #[test]
    fn monomial_has_expected_degree_and_value() {
        let p = Polynomial::monomial(F25::from_u64(5), 3);
        assert_eq!(p.degree(), Some(3));
        assert_eq!(p.evaluate(F25::from_u64(2)), F25::from_u64(40));
        assert!(Polynomial::monomial(F25::ZERO, 3).is_zero());
    }

    #[test]
    fn addition_and_subtraction_are_inverses() {
        let p = poly(&[1, 2, 3]);
        let q = poly(&[4, 5]);
        assert_eq!(p.add(&q).sub(&q), p);
    }

    #[test]
    fn multiplication_matches_known_product() {
        // (1 + z)(1 - z) = 1 - z^2
        let p = poly(&[1, 1]);
        let q = poly(&[1, -1]);
        assert_eq!(p.mul(&q), poly(&[1, 0, -1]));
    }

    #[test]
    fn multiplication_by_zero_is_zero() {
        let p = poly(&[1, 2, 3]);
        assert!(p.mul(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn division_round_trips() {
        let p = poly(&[2, 7, 1, 5]);
        let d = poly(&[3, 1]);
        let (q, r) = p.div_rem(&d);
        assert_eq!(q.mul(&d).add(&r), p);
        assert!(r.degree().unwrap_or(0) < d.degree().unwrap());
    }

    #[test]
    fn division_of_lower_degree_returns_self_as_remainder() {
        let p = poly(&[1, 2]);
        let d = poly(&[1, 2, 3]);
        let (q, r) = p.div_rem(&d);
        assert!(q.is_zero());
        assert_eq!(r, p);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = poly(&[1]).div_rem(&Polynomial::zero());
    }

    #[test]
    fn derivative_matches_power_rule() {
        // p(z) = 3 + 2z + 5z^2 + z^3 → p'(z) = 2 + 10z + 3z^2
        let p = poly(&[3, 2, 5, 1]);
        assert_eq!(p.derivative(), poly(&[2, 10, 3]));
        assert!(Polynomial::<F25>::zero().derivative().is_zero());
        assert!(Polynomial::constant(F25::from_u64(7))
            .derivative()
            .is_zero());
    }

    #[test]
    fn evaluate_many_matches_individual_evaluations() {
        let p = poly(&[1, 0, 2]);
        let points: Vec<F25> = (0..5).map(F25::from_u64).collect();
        let values = p.evaluate_many(&points);
        for (point, value) in points.iter().zip(values.iter()) {
            assert_eq!(p.evaluate(*point), *value);
        }
    }

    #[test]
    fn vector_valued_evaluation_matches_scalar_evaluation_per_slot() {
        // Two "slots": p0(z) = 1 + 2z, p1(z) = 3 + 4z.
        let coefficient_vectors = vec![
            vec![F25::from_u64(1), F25::from_u64(3)],
            vec![F25::from_u64(2), F25::from_u64(4)],
        ];
        let point = F25::from_u64(10);
        let value = Polynomial::evaluate_vector_valued(&coefficient_vectors, point);
        assert_eq!(value, vec![F25::from_u64(21), F25::from_u64(43)]);
    }

    #[test]
    fn vector_valued_evaluation_of_empty_is_empty() {
        let value = Polynomial::<F25>::evaluate_vector_valued(&[], F25::from_u64(3));
        assert!(value.is_empty());
    }

    fn arbitrary_poly() -> impl Strategy<Value = Polynomial<F25>> {
        proptest::collection::vec(0u64..F25::MODULUS, 0..8).prop_map(|coefficients| {
            Polynomial::from_coefficients(coefficients.into_iter().map(F25::from_u64).collect())
        })
    }

    proptest! {
        #[test]
        fn prop_mul_degree_adds(p in arbitrary_poly(), q in arbitrary_poly()) {
            let product = p.mul(&q);
            match (p.degree(), q.degree()) {
                (Some(dp), Some(dq)) => prop_assert_eq!(product.degree(), Some(dp + dq)),
                _ => prop_assert!(product.is_zero()),
            }
        }

        #[test]
        fn prop_evaluation_is_ring_homomorphism(
            p in arbitrary_poly(),
            q in arbitrary_poly(),
            point in 0u64..F25::MODULUS,
        ) {
            let point = F25::from_u64(point);
            prop_assert_eq!(p.add(&q).evaluate(point), p.evaluate(point) + q.evaluate(point));
            prop_assert_eq!(p.mul(&q).evaluate(point), p.evaluate(point) * q.evaluate(point));
        }

        #[test]
        fn prop_div_rem_reconstructs(p in arbitrary_poly(), d in arbitrary_poly()) {
            prop_assume!(!d.is_zero());
            let (q, r) = p.div_rem(&d);
            prop_assert_eq!(q.mul(&d).add(&r), p);
            if let Some(rd) = r.degree() {
                prop_assert!(rd < d.degree().unwrap());
            }
        }
    }
}
