//! NTT-backed fast polynomial arithmetic.
//!
//! [`Polynomial`]'s inherent `mul` / `div_rem` are schoolbook — the right
//! choice for the tiny degrees of the Berlekamp–Welch `Q/E` chains. The
//! subproduct-tree machinery ([`crate::subproduct`]) behind the decoder's
//! straggler path multiplies and divides polynomials whose degrees grow with
//! the recovery threshold, so this module adds quasi-linear alternatives for
//! concrete [`Fp`] coefficients:
//!
//! * [`Polynomial::mul_fast`] — convolution as two forward NTTs, a pointwise
//!   product and one inverse NTT (`O(n log n)`), selected whenever the result
//!   is long enough to beat schoolbook and the field's two-adic subgroup can
//!   hold it; schoolbook otherwise (including on fields with no declared NTT
//!   metadata, where the methods are drop-in equivalents).
//! * [`Polynomial::inverse_mod_power`] — the truncated power-series inverse
//!   `f^{-1} mod z^n` by Newton iteration (`g ← g·(2 − f·g)`, doubling the
//!   precision per step, every product a [`Polynomial::mul_fast`]).
//! * [`Polynomial::div_rem_fast`] — division with remainder via the reversal
//!   trick: `rev(q) = rev(f)·rev(g)^{-1} mod z^{deg f − deg g + 1}`, so one
//!   Newton inverse and two multiplications replace the `O(n·m)` long
//!   division.
//!
//! All three are bit-identical to their schoolbook counterparts (exact field
//! arithmetic — proptested against them), so callers select purely on cost.

use std::collections::BTreeMap;

use avcc_field::{Fp, PrimeField, PrimeModulus};

use crate::dense::Polynomial;
use crate::ntt::NttPlan;

/// A read-only pool of transform plans keyed by `log2` size — the
/// subproduct tree pre-builds one per size it will need so that the many
/// products and divisions of a tree build/descent reuse twiddle tables
/// instead of re-deriving them per multiplication ([`Polynomial::mul_fast`]
/// without a pool pays one `power_series` + inversion per call).
pub(crate) type PlanPool<M> = BTreeMap<u32, NttPlan<M>>;

/// Result length at which [`Polynomial::mul_fast`] switches from schoolbook
/// convolution to NTT convolution. Below this the lazy-reduction dot-product
/// windows of the schoolbook path win on constant factors; above it the
/// `O(n log n)` transform wins asymptotically. The exact crossover is
/// modulus-dependent; 32 is conservative for every backend (on the
/// Goldilocks field, whose `WIDE_BATCH = 1` makes schoolbook pay a full
/// reduction per product, the NTT wins earlier).
pub const NTT_MUL_THRESHOLD: usize = 32;

/// The `log2` NTT size for a convolution producing `result_len`
/// coefficients, or `None` when the schoolbook path should be used instead
/// (result too short, field without NTT metadata, or subgroup too small).
fn convolution_log<M: PrimeModulus>(result_len: usize) -> Option<u32> {
    if result_len < NTT_MUL_THRESHOLD || M::TWO_ADICITY == 0 {
        return None;
    }
    let log = result_len.next_power_of_two().trailing_zeros();
    (log <= M::TWO_ADICITY).then_some(log)
}

/// Truncates `p` to its first `n` coefficients (`p mod z^n`).
fn truncate_mod_power<M: PrimeModulus>(p: &Polynomial<Fp<M>>, n: usize) -> Polynomial<Fp<M>> {
    let len = p.coefficients().len().min(n);
    Polynomial::from_coefficients(p.coefficients()[..len].to_vec())
}

/// Reverses `p` as a fixed-width coefficient list of length `len`
/// (`z^{len−1}·p(1/z)`), zero-padding the high end first.
fn reverse_fixed<M: PrimeModulus>(p: &Polynomial<Fp<M>>, len: usize) -> Polynomial<Fp<M>> {
    debug_assert!(p.coefficients().len() <= len);
    let mut coefficients = p.coefficients().to_vec();
    coefficients.resize(len, Fp::<M>::ZERO);
    coefficients.reverse();
    Polynomial::from_coefficients(coefficients)
}

/// NTT convolution of two nonzero polynomials through an existing plan.
fn ntt_convolve<M: PrimeModulus>(
    a: &Polynomial<Fp<M>>,
    b: &Polynomial<Fp<M>>,
    plan: &NttPlan<M>,
    result_len: usize,
) -> Polynomial<Fp<M>> {
    let n = plan.len();
    let mut left = a.coefficients().to_vec();
    left.resize(n, Fp::<M>::ZERO);
    let mut right = b.coefficients().to_vec();
    right.resize(n, Fp::<M>::ZERO);
    plan.forward(&mut left);
    plan.forward(&mut right);
    for (x, &y) in left.iter_mut().zip(right.iter()) {
        *x *= y;
    }
    plan.inverse(&mut left);
    left.truncate(result_len);
    Polynomial::from_coefficients(left)
}

/// [`Polynomial::mul_fast`] with an optional plan pool: a pooled plan is
/// used when present, a transient one is built when not.
pub(crate) fn mul_fast_pooled<M: PrimeModulus>(
    a: &Polynomial<Fp<M>>,
    b: &Polynomial<Fp<M>>,
    plans: Option<&PlanPool<M>>,
) -> Polynomial<Fp<M>> {
    if a.is_zero() || b.is_zero() {
        return Polynomial::zero();
    }
    let result_len = a.coefficients().len() + b.coefficients().len() - 1;
    let Some(log_n) = convolution_log::<M>(result_len) else {
        return a.mul(b);
    };
    match plans.and_then(|pool| pool.get(&log_n)) {
        Some(plan) => ntt_convolve(a, b, plan, result_len),
        None => ntt_convolve(a, b, &NttPlan::<M>::new(log_n), result_len),
    }
}

/// [`Polynomial::inverse_mod_power`] with an optional plan pool.
pub(crate) fn inverse_mod_power_pooled<M: PrimeModulus>(
    f: &Polynomial<Fp<M>>,
    precision: usize,
    plans: Option<&PlanPool<M>>,
) -> Polynomial<Fp<M>> {
    assert!(precision > 0, "power-series inverse needs precision ≥ 1");
    let constant = f.coefficient(0);
    assert!(
        !constant.is_zero(),
        "power series with zero constant term has no inverse"
    );
    let two = Fp::<M>::ONE + Fp::<M>::ONE;
    let mut inverse = Polynomial::constant(constant.inverse());
    let mut current = 1usize;
    while current < precision {
        current = (current * 2).min(precision);
        let truncated = truncate_mod_power(f, current);
        let fg = truncate_mod_power(&mul_fast_pooled(&truncated, &inverse, plans), current);
        let correction = Polynomial::constant(two).sub(&fg);
        inverse = truncate_mod_power(&mul_fast_pooled(&inverse, &correction, plans), current);
    }
    inverse
}

/// [`Polynomial::div_rem_fast`] with an optional plan pool.
pub(crate) fn div_rem_fast_pooled<M: PrimeModulus>(
    dividend: &Polynomial<Fp<M>>,
    divisor: &Polynomial<Fp<M>>,
    plans: Option<&PlanPool<M>>,
) -> (Polynomial<Fp<M>>, Polynomial<Fp<M>>) {
    assert!(!divisor.is_zero(), "polynomial division by zero");
    if dividend.is_zero() || dividend.coefficients().len() < divisor.coefficients().len() {
        return (Polynomial::zero(), dividend.clone());
    }
    let quotient_len = dividend.coefficients().len() - divisor.coefficients().len() + 1;
    if quotient_len.min(divisor.coefficients().len()) < NTT_MUL_THRESHOLD || M::TWO_ADICITY == 0 {
        return dividend.div_rem(divisor);
    }
    let dividend_reversed = reverse_fixed(dividend, dividend.coefficients().len());
    let divisor_reversed = reverse_fixed(divisor, divisor.coefficients().len());
    let inverse = inverse_mod_power_pooled(&divisor_reversed, quotient_len, plans);
    let quotient_reversed = truncate_mod_power(
        &mul_fast_pooled(
            &truncate_mod_power(&dividend_reversed, quotient_len),
            &inverse,
            plans,
        ),
        quotient_len,
    );
    let quotient = reverse_fixed(&quotient_reversed, quotient_len);
    let remainder = dividend.sub(&mul_fast_pooled(&quotient, divisor, plans));
    (quotient, remainder)
}

impl<M: PrimeModulus> Polynomial<Fp<M>> {
    /// Polynomial multiplication through the field's NTT when the product is
    /// long enough ([`NTT_MUL_THRESHOLD`]) and the two-adic subgroup can hold
    /// it; falls back to the schoolbook [`Polynomial::mul`] otherwise. The
    /// result is bit-identical either way.
    pub fn mul_fast(&self, other: &Self) -> Self {
        mul_fast_pooled(self, other, None)
    }

    /// The truncated power-series inverse: the unique `g` with
    /// `self·g ≡ 1 (mod z^precision)`, computed by Newton iteration
    /// (`g ← g·(2 − f·g)`), doubling the valid precision each step.
    ///
    /// # Panics
    /// Panics if `precision` is zero or the constant term of `self` is zero
    /// (the power series has no inverse).
    pub fn inverse_mod_power(&self, precision: usize) -> Self {
        inverse_mod_power_pooled(self, precision, None)
    }

    /// Division with remainder through the reversal trick and a Newton
    /// power-series inverse: `O(n log n)` against long division's `O(n·m)`.
    /// Falls back to the schoolbook [`Polynomial::div_rem`] when either the
    /// quotient or the divisor is short (there the constant factors favor
    /// long division). Quotient and remainder are bit-identical either way —
    /// both satisfy `self = q·divisor + r` with `deg r < deg divisor`, which
    /// determines them uniquely.
    ///
    /// # Panics
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem_fast(&self, divisor: &Self) -> (Self, Self) {
        div_rem_fast_pooled(self, divisor, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F25, F64};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_poly(len: usize, seed: u64) -> Polynomial<F64> {
        let mut rng = StdRng::seed_from_u64(seed);
        Polynomial::from_coefficients(avcc_field::random_vector(&mut rng, len))
    }

    #[test]
    fn mul_fast_crosses_the_ntt_threshold() {
        // 40 + 40 − 1 = 79 > threshold: this product takes the NTT path.
        let a = random_poly(40, 1);
        let b = random_poly(40, 2);
        assert_eq!(a.mul_fast(&b), a.mul(&b));
        // 4 + 4 − 1 = 7 < threshold: schoolbook path, still identical.
        let c = random_poly(4, 3);
        let d = random_poly(4, 4);
        assert_eq!(c.mul_fast(&d), c.mul(&d));
    }

    #[test]
    fn mul_fast_on_non_ntt_field_is_schoolbook() {
        // P25 declares no two-adicity: mul_fast must silently fall back.
        let a: Polynomial<F25> =
            Polynomial::from_coefficients((1..60).map(F25::from_u64).collect());
        let b: Polynomial<F25> =
            Polynomial::from_coefficients((5..70).map(F25::from_u64).collect());
        assert_eq!(a.mul_fast(&b), a.mul(&b));
    }

    #[test]
    fn mul_fast_by_zero_is_zero() {
        let a = random_poly(50, 5);
        assert!(a.mul_fast(&Polynomial::zero()).is_zero());
        assert!(Polynomial::<F64>::zero().mul_fast(&a).is_zero());
    }

    #[test]
    fn inverse_mod_power_is_a_power_series_inverse() {
        for precision in [1usize, 2, 3, 17, 64, 100] {
            let f = random_poly(48, precision as u64 + 10);
            prop_assert_inverse(&f, precision);
        }
    }

    fn prop_assert_inverse(f: &Polynomial<F64>, precision: usize) {
        let g = f.inverse_mod_power(precision);
        let product = f.mul_fast(&g);
        assert_eq!(product.coefficient(0), F64::ONE);
        for i in 1..precision {
            assert_eq!(product.coefficient(i), F64::ZERO, "coefficient {i}");
        }
        assert!(g.coefficients().len() <= precision);
    }

    #[test]
    #[should_panic(expected = "zero constant term")]
    fn inverse_of_series_with_zero_constant_panics() {
        let f: Polynomial<F64> = Polynomial::monomial(F64::ONE, 1);
        let _ = f.inverse_mod_power(4);
    }

    #[test]
    fn div_rem_fast_matches_long_division_at_size() {
        // Both operands long enough for the Newton path.
        let f = random_poly(150, 21);
        let g = random_poly(70, 22);
        let (q_fast, r_fast) = f.div_rem_fast(&g);
        let (q, r) = f.div_rem(&g);
        assert_eq!(q_fast, q);
        assert_eq!(r_fast, r);
    }

    #[test]
    fn div_rem_fast_small_cases_fall_back() {
        let f = random_poly(10, 31);
        let g = random_poly(4, 32);
        assert_eq!(f.div_rem_fast(&g), f.div_rem(&g));
        // Dividend shorter than divisor: quotient zero, remainder self.
        let (q, r) = g.div_rem_fast(&f);
        assert!(q.is_zero());
        assert_eq!(r, g);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_rem_fast_by_zero_panics() {
        let f = random_poly(10, 41);
        let _ = f.div_rem_fast(&Polynomial::zero());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_mul_fast_matches_schoolbook(seed in any::<u64>(), la in 1usize..120, lb in 1usize..120) {
            let a = random_poly(la, seed);
            let b = random_poly(lb, seed ^ 0x9e3779b97f4a7c15);
            prop_assert_eq!(a.mul_fast(&b), a.mul(&b));
        }

        #[test]
        fn prop_div_rem_fast_matches_long_division(seed in any::<u64>(), lf in 1usize..160, lg in 1usize..160) {
            let f = random_poly(lf, seed);
            let g = random_poly(lg, seed ^ 0xdeadbeef);
            prop_assume!(!g.is_zero());
            let (q_fast, r_fast) = f.div_rem_fast(&g);
            let (q, r) = f.div_rem(&g);
            prop_assert_eq!(q_fast, q);
            prop_assert_eq!(r_fast, r);
        }

        #[test]
        fn prop_newton_inverse_inverts(seed in any::<u64>(), len in 1usize..80, precision in 1usize..90) {
            let f = random_poly(len, seed);
            prop_assume!(!f.coefficient(0).is_zero());
            let g = f.inverse_mod_power(precision);
            let product = f.mul_fast(&g);
            prop_assert_eq!(product.coefficient(0), F64::ONE);
            for i in 1..precision {
                prop_assert_eq!(product.coefficient(i), F64::ZERO);
            }
        }
    }
}
