//! Polynomials, Lagrange interpolation, linear solving and Reed–Solomon error
//! decoding over prime fields.
//!
//! This crate provides the algebraic machinery behind both coding layers of
//! the AVCC reproduction:
//!
//! * The **MDS / Lagrange encoders** (crate `avcc-coding`) build the encoding
//!   polynomial `u(z) = Σ X_j ℓ_j(z) + Σ W_j ℓ_j(z)` from Lagrange basis
//!   monomials ([`lagrange`]) and evaluate it at the worker points `α_i`.
//! * The **decoders** interpolate `f(u(z))` from worker evaluations:
//!   erasure-only decoding is plain Lagrange interpolation
//!   ([`lagrange::interpolate`]), while the LCC baseline's Byzantine
//!   tolerance needs *error-correcting* decoding, implemented here as the
//!   Berlekamp–Welch algorithm ([`reed_solomon::BerlekampWelch`]) on top of a
//!   dense Gaussian-elimination solver ([`linear::solve`]).
//! * When the field is NTT-friendly and the evaluation points sit in a
//!   power-of-two multiplicative subgroup, both directions collapse to
//!   `O(n log n)` number-theoretic transforms ([`ntt::NttPlan`]) — the fast
//!   paths of the coding layer.
//! * When the points are in subgroup position but some workers are *missing*
//!   (stragglers, evicted Byzantine workers), the surviving points are no
//!   longer a full coset. The [`fast`] polynomial arithmetic (NTT
//!   multiplication, Newton division) and the [`subproduct`] tree
//!   ([`subproduct::SubproductTree`] / [`subproduct::TreeInterpolator`])
//!   still give `O(n log² n)` multipoint evaluation and interpolation over
//!   *arbitrary* point subsets — the decoder's straggler path.
//!
//! All algorithms are written generically over [`avcc_field::PrimeField`];
//! the fast-arithmetic layer is additionally specialized to concrete
//! [`avcc_field::Fp`] coefficients so it can reach the NTT machinery, and
//! degrades to the schoolbook algorithms on fields without NTT metadata.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod fast;
pub mod lagrange;
pub mod linear;
pub mod ntt;
pub mod reed_solomon;
pub mod subproduct;

pub use dense::Polynomial;
pub use fast::NTT_MUL_THRESHOLD;
pub use lagrange::{evaluate_basis_at, interpolate, interpolate_eval, LagrangeBasis};
pub use linear::{invert_matrix, mat_vec, rank, solve, LinearSolveError};
pub use ntt::{root_of_unity, NttPlan, NTT_LANES};
pub use reed_solomon::{BerlekampWelch, RsDecodeError, RsDecoded};
pub use subproduct::{SubproductTree, TreeInterpolator};
