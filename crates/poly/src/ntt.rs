//! Number-theoretic transforms over NTT-friendly prime fields.
//!
//! When the Lagrange evaluation points sit in a multiplicative subgroup of
//! order `n = 2^k` (possible whenever `2^k` divides `q − 1`, i.e. `k` is at
//! most the field's two-adicity), evaluating a polynomial at all subgroup
//! points *is* a forward NTT and interpolating values on the subgroup back to
//! coefficients *is* an inverse NTT — `O(n log n)` instead of the `O(n²)`
//! Lagrange matrix. This module supplies the machinery the coding layer's
//! fast paths are built on:
//!
//! * [`NttPlan`] — a cached transform plan for one power-of-two size:
//!   bit-reversal-ready twiddle tables for the forward and inverse transforms
//!   and the precomputed `n^{-1}` scaling.
//! * Scalar transforms ([`NttPlan::forward`] / [`NttPlan::inverse`]) for
//!   per-coordinate work (tests, fingerprints).
//! * Vector-lane transforms ([`NttPlan::forward_vectors`] /
//!   [`NttPlan::inverse_vectors`]) in which every "element" is a whole data
//!   block: the butterflies stream contiguously over block slices, which is
//!   how the encoder transforms `K+T` matrices at once without a strided
//!   per-coordinate gather. Both networks unroll [`NTT_LANES`] independent
//!   butterflies per step so the per-product reductions overlap instead of
//!   serializing (safe portable ILP, same spirit as the
//!   [`avcc_field::DOT_LANES`] dot-product striping).
//! * Coset helpers ([`NttPlan::coset_scale`] / [`NttPlan::coset_scale_vectors`])
//!   implementing the substitution `u(z) → u(c·z)`: scaling coefficient `k`
//!   by `c^k` turns a subgroup transform into an evaluation on the coset
//!   `c·H` (the worker points live on a coset so they never collide with the
//!   interpolation subgroup).
//!
//! The plan is generic over [`PrimeModulus`] and checks the field's declared
//! [`PrimeModulus::TWO_ADICITY`] at construction; fields that do not declare
//! NTT metadata (the default) simply cannot build a plan.
//!
//! # Montgomery-form twiddles
//!
//! For chain-routed moduli ([`PrimeModulus::MONTGOMERY_CHAINS`], e.g. the
//! Goldilocks field where `WIDE_BATCH = 1` makes every butterfly product pay
//! a full reduction) the plan stores its twiddle tables, the `n^{-1}`
//! scaling and the running coset powers **pre-converted to Montgomery form,
//! once per plan**. Each butterfly then multiplies via the hybrid REDC step
//! `t̄·y·R^{-1} = t·y`, whose output is already canonical — the data vector
//! never enters or leaves the domain, and the per-product cost drops from
//! the modulus's wide fold to one REDC. The transforms are bit-for-bit
//! identical either way; selection is a `const` branch that folds away.

use avcc_field::{power_series, Fp, PrimeField, PrimeModulus};

/// Number of butterflies (scalar network) or block coordinates (vector-lane
/// network) processed per unrolled step. Independent butterflies break the
/// dependency chain of the per-product reduction (three dependent multiplies
/// per REDC on the Montgomery-routed moduli), mirroring
/// [`avcc_field::DOT_LANES`] in the dot-product kernels; the transforms are
/// bit-identical to the rolled loop.
pub const NTT_LANES: usize = 4;

/// Multiplies a stored plan constant (a raw [`to_plan_form`] residue — kept
/// as a bare `u64` precisely so a Montgomery residue can never be mistaken
/// for a canonical [`Fp`]) by a data value: for chain-routed moduli one
/// hybrid REDC lands the canonical product; otherwise it is a plain
/// canonical multiply.
#[inline]
fn twiddle_mul<M: PrimeModulus>(twiddle: u64, value: Fp<M>) -> Fp<M> {
    if M::MONTGOMERY_CHAINS {
        Fp::new(M::mul_redc(twiddle, value.value()))
    } else {
        Fp::new(M::reduce_wide(twiddle as u128 * value.value() as u128))
    }
}

/// Lifts a plan constant into the raw representation [`twiddle_mul`]
/// expects: the Montgomery residue for chain-routed moduli, the canonical
/// representative otherwise.
#[inline]
fn to_plan_form<M: PrimeModulus>(value: Fp<M>) -> u64 {
    if M::MONTGOMERY_CHAINS {
        M::to_montgomery(value.value())
    } else {
        value.value()
    }
}

/// Multiplies two plan-form residues, staying in plan form — the step of
/// the running coset-power chain (in the Montgomery domain the REDC product
/// of two residues is again a residue).
#[inline]
fn plan_form_mul<M: PrimeModulus>(a: u64, b: u64) -> u64 {
    if M::MONTGOMERY_CHAINS {
        M::mul_redc(a, b)
    } else {
        M::reduce_wide(a as u128 * b as u128)
    }
}

/// A primitive `2^log_n`-th root of unity of the field `M`.
///
/// # Panics
/// Panics if `log_n` exceeds the field's declared two-adicity (in particular
/// for any field that leaves the default `TWO_ADICITY = 0`).
pub fn root_of_unity<M: PrimeModulus>(log_n: u32) -> Fp<M> {
    assert!(
        log_n <= M::TWO_ADICITY,
        "{} supports NTT sizes up to 2^{}, requested 2^{log_n}",
        M::NAME,
        M::TWO_ADICITY,
    );
    if log_n == 0 {
        // The primitive 1st root of unity in any field — returned explicitly
        // so fields with the inert default metadata (TWO_ADICITY = 0, bogus
        // generator) still give the right answer for the trivial size.
        return Fp::<M>::ONE;
    }
    // The declared generator has order 2^TWO_ADICITY; squaring it
    // (TWO_ADICITY − log_n) times yields order exactly 2^log_n.
    let mut root = Fp::<M>::new(M::TWO_ADIC_GENERATOR);
    for _ in log_n..M::TWO_ADICITY {
        root *= root;
    }
    root
}

/// Bit-reversal permutation of a power-of-two-length slice (the input
/// reordering of the iterative decimation-in-time butterfly network).
fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    if n <= 2 {
        // 0- and 1-bit indices are their own reversals (and the full 64-bit
        // shift below would overflow for n = 1).
        return;
    }
    let shift = usize::BITS - n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// A cached radix-2 NTT plan for one power-of-two size.
#[derive(Debug, Clone)]
pub struct NttPlan<M: PrimeModulus> {
    log_n: u32,
    /// `forward_twiddles[j] = ω^j` for `j < n/2`, as raw [`to_plan_form`]
    /// residues (Montgomery form for chain-routed moduli, see
    /// [`twiddle_mul`]).
    forward_twiddles: Vec<u64>,
    /// `inverse_twiddles[j] = ω^{−j}` for `j < n/2` (same representation).
    inverse_twiddles: Vec<u64>,
    /// `n^{-1}`, applied after the inverse butterfly network (same
    /// representation).
    n_inverse: u64,
    _modulus: core::marker::PhantomData<M>,
}

impl<M: PrimeModulus> NttPlan<M> {
    /// Builds the plan for transforms of size `n = 2^log_n`.
    ///
    /// # Panics
    /// Panics if `log_n` exceeds the field's declared two-adicity.
    pub fn new(log_n: u32) -> Self {
        let n = 1usize << log_n;
        let omega = root_of_unity::<M>(log_n);
        let omega_inverse = omega.inverse();
        let half = n.max(2) / 2;
        // The twiddle tables are power series (themselves dependent product
        // chains, Montgomery-routed where the modulus opted in), converted
        // into plan form once — the butterflies never convert again.
        let forward_twiddles = power_series(omega, half)
            .into_iter()
            .map(to_plan_form)
            .collect();
        let inverse_twiddles = power_series(omega_inverse, half)
            .into_iter()
            .map(to_plan_form)
            .collect();
        NttPlan {
            log_n,
            forward_twiddles,
            inverse_twiddles,
            n_inverse: to_plan_form(Fp::<M>::new(n as u64).inverse()),
            _modulus: core::marker::PhantomData,
        }
    }

    /// The transform size `n`.
    pub fn len(&self) -> usize {
        1usize << self.log_n
    }

    /// Always `false`: a plan transforms at least one element. Provided for
    /// API symmetry with [`NttPlan::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `log2` of the transform size.
    pub fn log_len(&self) -> u32 {
        self.log_n
    }

    /// In-place forward transform: `data[i] ← Σ_k data[k]·ω^{ik}`
    /// (coefficients → values on the subgroup).
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan size.
    pub fn forward(&self, data: &mut [Fp<M>]) {
        assert_eq!(data.len(), self.len(), "NTT size mismatch");
        bit_reverse_permute(data);
        self.butterflies(data, &self.forward_twiddles);
    }

    /// In-place inverse transform: values on the subgroup → coefficients.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan size.
    pub fn inverse(&self, data: &mut [Fp<M>]) {
        assert_eq!(data.len(), self.len(), "NTT size mismatch");
        bit_reverse_permute(data);
        self.butterflies(data, &self.inverse_twiddles);
        for value in data.iter_mut() {
            *value = twiddle_mul(self.n_inverse, *value);
        }
    }

    /// The iterative butterfly network shared by both directions.
    ///
    /// Butterflies at distinct offsets within a block are independent, so
    /// the inner loop runs [`NTT_LANES`] of them per step with separate
    /// temporaries: four `twiddle_mul` reductions (three dependent multiplies
    /// each on the Montgomery-routed moduli) overlap instead of serializing.
    /// The remainder loop handles the first stages, whose half-blocks are
    /// narrower than one lane group.
    fn butterflies(&self, data: &mut [Fp<M>], twiddles: &[u64]) {
        let n = data.len();
        let mut len = 2;
        while len <= n {
            let step = n / len;
            let half = len / 2;
            for start in (0..n).step_by(len) {
                let (left, right) = data[start..start + len].split_at_mut(half);
                let mut k = 0;
                while k + NTT_LANES <= half {
                    let t0 = twiddle_mul(twiddles[k * step], right[k]);
                    let t1 = twiddle_mul(twiddles[(k + 1) * step], right[k + 1]);
                    let t2 = twiddle_mul(twiddles[(k + 2) * step], right[k + 2]);
                    let t3 = twiddle_mul(twiddles[(k + 3) * step], right[k + 3]);
                    let (a0, a1, a2, a3) = (left[k], left[k + 1], left[k + 2], left[k + 3]);
                    left[k] = a0 + t0;
                    left[k + 1] = a1 + t1;
                    left[k + 2] = a2 + t2;
                    left[k + 3] = a3 + t3;
                    right[k] = a0 - t0;
                    right[k + 1] = a1 - t1;
                    right[k + 2] = a2 - t2;
                    right[k + 3] = a3 - t3;
                    k += NTT_LANES;
                }
                while k < half {
                    let t = twiddle_mul(twiddles[k * step], right[k]);
                    let a = left[k];
                    left[k] = a + t;
                    right[k] = a - t;
                    k += 1;
                }
            }
            len <<= 1;
        }
    }

    /// Forward transform over vector lanes: `lanes` is a slice of `n`
    /// equal-length blocks, and the butterflies operate element-wise on whole
    /// blocks. One call transforms every coordinate of the blocks at once,
    /// with contiguous streaming access — this is the encoder's workhorse.
    ///
    /// # Panics
    /// Panics if `lanes.len()` differs from the plan size or the blocks
    /// disagree in length.
    pub fn forward_vectors(&self, lanes: &mut [Vec<Fp<M>>]) {
        assert_eq!(lanes.len(), self.len(), "NTT size mismatch");
        bit_reverse_permute(lanes);
        self.vector_butterflies(lanes, &self.forward_twiddles);
    }

    /// Inverse transform over vector lanes (values → coefficients, scaled by
    /// `n^{-1}`).
    ///
    /// # Panics
    /// Panics if `lanes.len()` differs from the plan size or the blocks
    /// disagree in length.
    pub fn inverse_vectors(&self, lanes: &mut [Vec<Fp<M>>]) {
        assert_eq!(lanes.len(), self.len(), "NTT size mismatch");
        bit_reverse_permute(lanes);
        self.vector_butterflies(lanes, &self.inverse_twiddles);
        for lane in lanes.iter_mut() {
            for value in lane.iter_mut() {
                *value = twiddle_mul(self.n_inverse, *value);
            }
        }
    }

    /// The vector-lane butterfly network: one twiddle per butterfly, applied
    /// element-wise across a whole block pair. The coordinate sweep runs
    /// [`NTT_LANES`] elements per step — with a shared twiddle the four
    /// `twiddle_mul` reductions are fully independent, so this is the
    /// highest-ILP loop in the transform (and the encoder's hot path).
    fn vector_butterflies(&self, lanes: &mut [Vec<Fp<M>>], twiddles: &[u64]) {
        let n = lanes.len();
        let width = lanes.first().map_or(0, Vec::len);
        let mut len = 2;
        while len <= n {
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..len / 2 {
                    let twiddle = twiddles[k * step];
                    // Split-borrow the (a, b) pair of lanes.
                    let (head, tail) = lanes.split_at_mut(start + k + len / 2);
                    let a = &mut head[start + k];
                    let b = &mut tail[0];
                    assert_eq!(a.len(), width, "NTT lanes must share a width");
                    assert_eq!(b.len(), width, "NTT lanes must share a width");
                    let mut a_groups = a.chunks_exact_mut(NTT_LANES);
                    let mut b_groups = b.chunks_exact_mut(NTT_LANES);
                    for (xs, ys) in a_groups.by_ref().zip(b_groups.by_ref()) {
                        let t0 = twiddle_mul(twiddle, ys[0]);
                        let t1 = twiddle_mul(twiddle, ys[1]);
                        let t2 = twiddle_mul(twiddle, ys[2]);
                        let t3 = twiddle_mul(twiddle, ys[3]);
                        ys[0] = xs[0] - t0;
                        ys[1] = xs[1] - t1;
                        ys[2] = xs[2] - t2;
                        ys[3] = xs[3] - t3;
                        xs[0] += t0;
                        xs[1] += t1;
                        xs[2] += t2;
                        xs[3] += t3;
                    }
                    for (x, y) in a_groups
                        .into_remainder()
                        .iter_mut()
                        .zip(b_groups.into_remainder().iter_mut())
                    {
                        let t = twiddle_mul(twiddle, *y);
                        let sum = *x + t;
                        *y = *x - t;
                        *x = sum;
                    }
                }
            }
            len <<= 1;
        }
    }

    /// Scales coefficient `k` by `shift^k`, turning a subsequent subgroup
    /// transform into an evaluation on the coset `shift·H` (and, with
    /// `shift^{-1}`, undoing it after an inverse transform).
    ///
    /// The running power is a dependent product chain; for chain-routed
    /// moduli it is held in Montgomery form (shift converted once per call),
    /// so both the chain step and the per-coefficient scale are single REDC
    /// multiplies with canonical output.
    pub fn coset_scale(&self, coefficients: &mut [Fp<M>], shift: Fp<M>) {
        let shift = to_plan_form(shift);
        let mut power = to_plan_form(Fp::<M>::ONE);
        for coefficient in coefficients.iter_mut() {
            *coefficient = twiddle_mul(power, *coefficient);
            power = plan_form_mul::<M>(power, shift);
        }
    }

    /// Vector-lane form of [`NttPlan::coset_scale`].
    pub fn coset_scale_vectors(&self, lanes: &mut [Vec<Fp<M>>], shift: Fp<M>) {
        let shift = to_plan_form(shift);
        let mut power = to_plan_form(Fp::<M>::ONE);
        for lane in lanes.iter_mut() {
            for value in lane.iter_mut() {
                *value = twiddle_mul(power, *value);
            }
            power = plan_form_mul::<M>(power, shift);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F64, P64};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_data(len: usize, seed: u64) -> Vec<F64> {
        let mut rng = StdRng::seed_from_u64(seed);
        avcc_field::random_vector(&mut rng, len)
    }

    /// Naive `O(n²)` DFT reference: `out[i] = Σ_k data[k]·ω^{ik}`.
    fn naive_dft(data: &[F64], omega: F64) -> Vec<F64> {
        (0..data.len())
            .map(|i| {
                let mut acc = F64::ZERO;
                let mut power = F64::ONE;
                let point = omega.pow(i as u64);
                for &value in data {
                    acc += value * power;
                    power *= point;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn forward_matches_naive_dft() {
        for log_n in 0..=6 {
            let plan = NttPlan::<P64>::new(log_n);
            let omega = root_of_unity::<P64>(log_n);
            let data = random_data(1 << log_n, log_n as u64);
            let expected = naive_dft(&data, omega);
            let mut transformed = data.clone();
            plan.forward(&mut transformed);
            assert_eq!(transformed, expected, "size 2^{log_n}");
        }
    }

    #[test]
    fn forward_is_evaluation_at_subgroup_points() {
        // NTT output i must equal Horner evaluation of the coefficient
        // polynomial at ω^i.
        let plan = NttPlan::<P64>::new(4);
        let omega = root_of_unity::<P64>(4);
        let coefficients = random_data(16, 99);
        let polynomial = crate::Polynomial::from_coefficients(coefficients.clone());
        let mut values = coefficients;
        plan.forward(&mut values);
        for (i, &value) in values.iter().enumerate() {
            assert_eq!(value, polynomial.evaluate(omega.pow(i as u64)), "point {i}");
        }
    }

    #[test]
    fn coset_scale_evaluates_on_shifted_coset() {
        let plan = NttPlan::<P64>::new(3);
        let omega = root_of_unity::<P64>(3);
        let shift = F64::from_u64(P64::GROUP_GENERATOR);
        let coefficients = random_data(8, 7);
        let polynomial = crate::Polynomial::from_coefficients(coefficients.clone());
        let mut values = coefficients;
        plan.coset_scale(&mut values, shift);
        plan.forward(&mut values);
        for (i, &value) in values.iter().enumerate() {
            let point = shift * omega.pow(i as u64);
            assert_eq!(value, polynomial.evaluate(point), "coset point {i}");
        }
    }

    #[test]
    fn vector_transforms_match_scalar_per_coordinate() {
        let plan = NttPlan::<P64>::new(4);
        let width = 5;
        let mut lanes: Vec<Vec<F64>> = (0..16).map(|i| random_data(width, 1000 + i)).collect();
        let original = lanes.clone();
        plan.forward_vectors(&mut lanes);
        for coordinate in 0..width {
            let mut scalar: Vec<F64> = original.iter().map(|lane| lane[coordinate]).collect();
            plan.forward(&mut scalar);
            let transformed: Vec<F64> = lanes.iter().map(|lane| lane[coordinate]).collect();
            assert_eq!(transformed, scalar, "coordinate {coordinate}");
        }
        plan.inverse_vectors(&mut lanes);
        assert_eq!(lanes, original);
    }

    #[test]
    fn size_one_plan_is_identity() {
        let plan = NttPlan::<P64>::new(0);
        let mut data = vec![F64::from_u64(42)];
        plan.forward(&mut data);
        assert_eq!(data, vec![F64::from_u64(42)]);
        plan.inverse(&mut data);
        assert_eq!(data, vec![F64::from_u64(42)]);
    }

    #[test]
    #[should_panic(expected = "supports NTT sizes up to")]
    fn oversized_plan_panics() {
        let _ = NttPlan::<P64>::new(33);
    }

    #[test]
    #[should_panic(expected = "supports NTT sizes up to")]
    fn non_ntt_field_cannot_build_a_plan() {
        let _ = NttPlan::<avcc_field::P61>::new(1);
    }

    #[test]
    #[should_panic(expected = "NTT size mismatch")]
    fn wrong_length_panics() {
        let plan = NttPlan::<P64>::new(3);
        let mut data = vec![F64::ZERO; 4];
        plan.forward(&mut data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_forward_inverse_is_identity(seed in any::<u64>(), log_n in 0u32..8) {
            let plan = NttPlan::<P64>::new(log_n);
            let data = random_data(1 << log_n, seed);
            let mut round_tripped = data.clone();
            plan.forward(&mut round_tripped);
            plan.inverse(&mut round_tripped);
            prop_assert_eq!(round_tripped, data);
        }

        #[test]
        fn prop_inverse_forward_is_identity(seed in any::<u64>(), log_n in 0u32..8) {
            let plan = NttPlan::<P64>::new(log_n);
            let data = random_data(1 << log_n, seed);
            let mut round_tripped = data.clone();
            plan.inverse(&mut round_tripped);
            plan.forward(&mut round_tripped);
            prop_assert_eq!(round_tripped, data);
        }

        #[test]
        fn prop_ntt_is_linear(seed in any::<u64>(), scale in 1u64..u64::MAX) {
            let plan = NttPlan::<P64>::new(5);
            let scale = F64::from_u64(scale);
            let data = random_data(32, seed);
            let mut scaled_then_transformed: Vec<F64> =
                data.iter().map(|&x| x * scale).collect();
            plan.forward(&mut scaled_then_transformed);
            let mut transformed = data;
            plan.forward(&mut transformed);
            let transformed_then_scaled: Vec<F64> =
                transformed.iter().map(|&x| x * scale).collect();
            prop_assert_eq!(scaled_then_transformed, transformed_then_scaled);
        }
    }
}
