//! Dense linear algebra over a prime field: Gaussian elimination, matrix
//! inversion and rank computation.
//!
//! The sizes involved are tiny (at most `N × N` with `N` the number of
//! workers, 12 in the paper's testbed), so a straightforward `O(n³)`
//! elimination with partial "pivoting" (any nonzero pivot works in a field) is
//! the right tool. The Berlekamp–Welch decoder ([`crate::reed_solomon`]) and
//! the MDS decoding-matrix construction both sit on top of [`solve`] /
//! [`invert_matrix`], and the T-privacy test uses [`rank`] to check the
//! invertibility of the bottom `T × T` submatrices of the encoding matrix
//! (Lemma 2 of the LCC paper, used in Theorem 1 of AVCC).

use avcc_field::PrimeField;

/// Errors from the linear solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearSolveError {
    /// The system is singular (no unique solution).
    Singular,
    /// Matrix/vector dimensions do not line up.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        details: String,
    },
}

impl std::fmt::Display for LinearSolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinearSolveError::Singular => write!(f, "singular linear system"),
            LinearSolveError::DimensionMismatch { details } => {
                write!(f, "dimension mismatch: {details}")
            }
        }
    }
}

impl std::error::Error for LinearSolveError {}

/// Solves the square system `A x = b` by Gauss–Jordan elimination.
///
/// `matrix` is row-major with `n × n` entries; `rhs` has length `n`.
pub fn solve<F: PrimeField>(matrix: &[F], rhs: &[F], n: usize) -> Result<Vec<F>, LinearSolveError> {
    if matrix.len() != n * n {
        return Err(LinearSolveError::DimensionMismatch {
            details: format!("matrix has {} entries, expected {}", matrix.len(), n * n),
        });
    }
    if rhs.len() != n {
        return Err(LinearSolveError::DimensionMismatch {
            details: format!("rhs has {} entries, expected {}", rhs.len(), n),
        });
    }
    // Augmented matrix [A | b].
    let width = n + 1;
    let mut augmented = vec![F::ZERO; n * width];
    for row in 0..n {
        augmented[row * width..row * width + n].copy_from_slice(&matrix[row * n..(row + 1) * n]);
        augmented[row * width + n] = rhs[row];
    }
    gauss_jordan(&mut augmented, n, width)?;
    Ok((0..n).map(|row| augmented[row * width + n]).collect())
}

/// Inverts the square row-major `n × n` matrix.
pub fn invert_matrix<F: PrimeField>(matrix: &[F], n: usize) -> Result<Vec<F>, LinearSolveError> {
    if matrix.len() != n * n {
        return Err(LinearSolveError::DimensionMismatch {
            details: format!("matrix has {} entries, expected {}", matrix.len(), n * n),
        });
    }
    // Augmented matrix [A | I].
    let width = 2 * n;
    let mut augmented = vec![F::ZERO; n * width];
    for row in 0..n {
        augmented[row * width..row * width + n].copy_from_slice(&matrix[row * n..(row + 1) * n]);
        augmented[row * width + n + row] = F::ONE;
    }
    gauss_jordan(&mut augmented, n, width)?;
    let mut inverse = vec![F::ZERO; n * n];
    for row in 0..n {
        inverse[row * n..(row + 1) * n]
            .copy_from_slice(&augmented[row * width + n..row * width + 2 * n]);
    }
    Ok(inverse)
}

/// Reduces the first `n` columns of the `rows × width` augmented matrix to the
/// identity, applying the same operations to the remaining columns.
fn gauss_jordan<F: PrimeField>(
    augmented: &mut [F],
    n: usize,
    width: usize,
) -> Result<(), LinearSolveError> {
    for pivot_column in 0..n {
        // Find a row with a nonzero pivot.
        let pivot_row = (pivot_column..n)
            .find(|&row| !augmented[row * width + pivot_column].is_zero())
            .ok_or(LinearSolveError::Singular)?;
        if pivot_row != pivot_column {
            for column in 0..width {
                augmented.swap(pivot_row * width + column, pivot_column * width + column);
            }
        }
        let pivot_inverse = augmented[pivot_column * width + pivot_column].inverse();
        for column in 0..width {
            augmented[pivot_column * width + column] *= pivot_inverse;
        }
        for row in 0..n {
            if row == pivot_column {
                continue;
            }
            let factor = augmented[row * width + pivot_column];
            if factor.is_zero() {
                continue;
            }
            for column in 0..width {
                let value = augmented[pivot_column * width + column];
                augmented[row * width + column] -= factor * value;
            }
        }
    }
    Ok(())
}

/// Computes the rank of a row-major `rows × cols` matrix by forward
/// elimination.
pub fn rank<F: PrimeField>(matrix: &[F], rows: usize, cols: usize) -> usize {
    assert_eq!(matrix.len(), rows * cols, "rank: dimension mismatch");
    let mut work = matrix.to_vec();
    let mut rank = 0usize;
    let mut pivot_row = 0usize;
    for pivot_column in 0..cols {
        if pivot_row >= rows {
            break;
        }
        let Some(found) = (pivot_row..rows).find(|&row| !work[row * cols + pivot_column].is_zero())
        else {
            continue;
        };
        if found != pivot_row {
            for column in 0..cols {
                work.swap(found * cols + column, pivot_row * cols + column);
            }
        }
        let pivot_inverse = work[pivot_row * cols + pivot_column].inverse();
        for column in pivot_column..cols {
            work[pivot_row * cols + column] *= pivot_inverse;
        }
        for row in (pivot_row + 1)..rows {
            let factor = work[row * cols + pivot_column];
            if factor.is_zero() {
                continue;
            }
            for column in pivot_column..cols {
                let value = work[pivot_row * cols + column];
                work[row * cols + column] -= factor * value;
            }
        }
        rank += 1;
        pivot_row += 1;
    }
    rank
}

/// Multiplies the row-major `rows × inner` matrix by the `inner`-length vector.
pub fn mat_vec<F: PrimeField>(matrix: &[F], vector: &[F], rows: usize, inner: usize) -> Vec<F> {
    assert_eq!(
        matrix.len(),
        rows * inner,
        "mat_vec: matrix dimension mismatch"
    );
    assert_eq!(vector.len(), inner, "mat_vec: vector dimension mismatch");
    (0..rows)
        .map(|row| {
            let mut accumulator = F::ZERO;
            for column in 0..inner {
                accumulator += matrix[row * inner + column] * vector[column];
            }
            accumulator
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::F25;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fm(values: &[i64]) -> Vec<F25> {
        values.iter().map(|&v| F25::from_i64(v)).collect()
    }

    #[test]
    fn solves_small_known_system() {
        // 2x + y = 5, x + 3y = 10  =>  x = 1, y = 3
        let a = fm(&[2, 1, 1, 3]);
        let b = fm(&[5, 10]);
        let x = solve(&a, &b, 2).unwrap();
        assert_eq!(x, fm(&[1, 3]));
    }

    #[test]
    fn identity_solves_to_rhs() {
        let identity = fm(&[1, 0, 0, 0, 1, 0, 0, 0, 1]);
        let b = fm(&[7, 8, 9]);
        assert_eq!(solve(&identity, &b, 3).unwrap(), b);
    }

    #[test]
    fn singular_system_is_detected() {
        let a = fm(&[1, 2, 2, 4]);
        let b = fm(&[1, 2]);
        assert_eq!(solve(&a, &b, 2), Err(LinearSolveError::Singular));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = fm(&[1, 2, 3]);
        let b = fm(&[1, 2]);
        assert!(matches!(
            solve(&a, &b, 2),
            Err(LinearSolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = fm(&[4, 7, 2, 6]);
        let inverse = invert_matrix(&a, 2).unwrap();
        let product = multiply(&a, &inverse, 2);
        assert_eq!(product, fm(&[1, 0, 0, 1]));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let a = fm(&[1, 2, 2, 4]);
        assert_eq!(invert_matrix(&a, 2), Err(LinearSolveError::Singular));
    }

    #[test]
    fn rank_of_identity_is_full() {
        let identity = fm(&[1, 0, 0, 0, 1, 0, 0, 0, 1]);
        assert_eq!(rank(&identity, 3, 3), 3);
    }

    #[test]
    fn rank_detects_dependent_rows() {
        let a = fm(&[1, 2, 3, 2, 4, 6, 0, 1, 1]);
        assert_eq!(rank(&a, 3, 3), 2);
    }

    #[test]
    fn rank_of_wide_matrix() {
        let a = fm(&[1, 0, 5, 0, 1, 7]);
        assert_eq!(rank(&a, 2, 3), 2);
    }

    #[test]
    fn mat_vec_matches_manual_computation() {
        let a = fm(&[1, 2, 3, 4]);
        let v = fm(&[5, 6]);
        assert_eq!(mat_vec(&a, &v, 2, 2), fm(&[17, 39]));
    }

    fn multiply(a: &[F25], b: &[F25], n: usize) -> Vec<F25> {
        let mut out = vec![F25::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    out[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
        out
    }

    proptest! {
        #[test]
        fn prop_solve_then_substitute(seed in any::<u64>(), n in 1usize..6) {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(seed);
            let matrix: Vec<F25> = (0..n * n)
                .map(|_| F25::from_u64(rng.gen_range(0..F25::MODULUS)))
                .collect();
            let rhs: Vec<F25> = (0..n)
                .map(|_| F25::from_u64(rng.gen_range(0..F25::MODULUS)))
                .collect();
            match solve(&matrix, &rhs, n) {
                Ok(solution) => {
                    let reconstructed = mat_vec(&matrix, &solution, n, n);
                    prop_assert_eq!(reconstructed, rhs);
                }
                Err(LinearSolveError::Singular) => {
                    prop_assert!(rank(&matrix, n, n) < n);
                }
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }

        #[test]
        fn prop_inverse_round_trips(seed in any::<u64>(), n in 1usize..6) {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(seed);
            let matrix: Vec<F25> = (0..n * n)
                .map(|_| F25::from_u64(rng.gen_range(0..F25::MODULUS)))
                .collect();
            if let Ok(inverse) = invert_matrix(&matrix, n) {
                let product = multiply(&matrix, &inverse, n);
                let mut identity = vec![F25::ZERO; n * n];
                for i in 0..n {
                    identity[i * n + i] = F25::ONE;
                }
                prop_assert_eq!(product, identity);
            }
        }
    }
}
