//! Cross-moduli equivalence: subproduct-tree interpolation against the dense
//! `LagrangeBasis`, and NTT polynomial multiplication against schoolbook
//! convolution — on all four moduli, over random straggler/Byzantine-style
//! survivor subsets, including boundary values near `q`.
//!
//! The decoder keeps the dense Lagrange combination as its correctness
//! oracle; these tests are the contract that makes that oracle meaningful:
//! whatever subset of points survives a round (stragglers drop trailing
//! workers, Byzantine eviction removes arbitrary ones), both interpolators
//! must produce bit-identical polynomials.

use avcc_field::{Fp, PrimeField, PrimeModulus, P25, P251, P61, P64};
use avcc_poly::{LagrangeBasis, Polynomial, SubproductTree, TreeInterpolator};
use proptest::prelude::*;

/// `count` pairwise-distinct points: an arithmetic run from `offset`, or a
/// descending run from `q − 1` to cover the boundary representatives.
fn distinct_points<M: PrimeModulus>(count: usize, offset: u64, near_boundary: bool) -> Vec<Fp<M>> {
    (0..count as u64)
        .map(|i| {
            if near_boundary {
                <Fp<M> as PrimeField>::from_u64(M::MODULUS - 1 - i)
            } else {
                <Fp<M> as PrimeField>::from_u64(offset.wrapping_add(i) % M::MODULUS)
            }
        })
        .collect()
}

/// Applies a survivor mask (the straggler/Byzantine subset pattern), keeping
/// at least one point so the interpolation problem stays well-posed.
fn surviving_subset<M: PrimeModulus>(
    points: &[Fp<M>],
    values: &[Fp<M>],
    mask: &[bool],
) -> (Vec<Fp<M>>, Vec<Fp<M>>) {
    let mut subset_points = Vec::new();
    let mut subset_values = Vec::new();
    for (i, (&p, &v)) in points.iter().zip(values.iter()).enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            subset_points.push(p);
            subset_values.push(v);
        }
    }
    if subset_points.is_empty() {
        subset_points.push(points[0]);
        subset_values.push(values[0]);
    }
    (subset_points, subset_values)
}

/// Tree interpolation must match the dense Lagrange interpolation
/// bit-for-bit, reproduce the values, and agree with the tree's fast
/// multipoint evaluation.
fn check_interpolation_matches<M: PrimeModulus>(points: Vec<Fp<M>>, values: Vec<Fp<M>>) {
    let tree_result = TreeInterpolator::new(points.clone()).interpolate(&values);
    let dense_result = LagrangeBasis::new(points.clone()).interpolate(&values);
    assert_eq!(tree_result, dense_result);
    let horner = tree_result.evaluate_many(&points);
    assert_eq!(horner, values);
    let multipoint = SubproductTree::new(points).evaluate(&tree_result);
    assert_eq!(multipoint, values);
}

macro_rules! cross_moduli_suite {
    ($module:ident, $modulus:ty, $max_points:expr) => {
        mod $module {
            use super::*;

            type M = $modulus;

            /// Uniform residues, with every eighth draw snapped next to `q`:
            /// the boundary is where lazy-reduction and carry bugs live.
            fn element() -> impl Strategy<Value = Fp<M>> {
                proptest::prelude::any::<u64>().prop_map(|v| {
                    if v % 8 == 0 {
                        <Fp<M> as PrimeField>::from_u64(
                            <M as PrimeModulus>::MODULUS - 1 - (v / 8) % 4,
                        )
                    } else {
                        <Fp<M> as PrimeField>::from_u64(v % <M as PrimeModulus>::MODULUS)
                    }
                })
            }

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(16))]

                #[test]
                fn prop_tree_interpolation_matches_lagrange_on_survivor_subsets(
                    count in 1usize..$max_points,
                    offset in 0u64..<M as PrimeModulus>::MODULUS,
                    near_boundary in any::<bool>(),
                    mask in proptest::collection::vec(any::<bool>(), $max_points),
                    values in proptest::collection::vec(element(), $max_points),
                ) {
                    let points = distinct_points::<M>(count, offset, near_boundary);
                    let values = values[..count].to_vec();
                    let (subset_points, subset_values) =
                        surviving_subset(&points, &values, &mask);
                    check_interpolation_matches(subset_points, subset_values);
                }

                #[test]
                fn prop_ntt_mul_matches_schoolbook(
                    a in proptest::collection::vec(element(), 1..96),
                    b in proptest::collection::vec(element(), 1..96),
                ) {
                    let a = Polynomial::from_coefficients(a);
                    let b = Polynomial::from_coefficients(b);
                    prop_assert_eq!(a.mul_fast(&b), a.mul(&b));
                }
            }
        }
    };
}

// P251 has only 251 residues, so its point runs stay short; the others get
// runs long enough that the survivor subsets cross the NTT-multiplication
// threshold on the NTT-capable modulus.
cross_moduli_suite!(p25, P25, 48);
cross_moduli_suite!(p61, P61, 48);
cross_moduli_suite!(p251, P251, 24);
cross_moduli_suite!(p64, P64, 48);

/// Survivor subsets of a genuine NTT coset layout — the exact point geometry
/// the decoder's straggler path sees: the α-points `g·ω^i` with a few
/// workers missing.
#[test]
fn coset_survivor_subsets_interpolate_identically_on_p64() {
    let log_workers = 5u32; // 32 workers
    let omega = avcc_poly::root_of_unity::<P64>(log_workers);
    let shift = Fp::<P64>::new(<P64 as PrimeModulus>::GROUP_GENERATOR);
    let mut alpha = Vec::new();
    let mut power = shift;
    for _ in 0..(1usize << log_workers) {
        alpha.push(power);
        power *= omega;
    }
    let values: Vec<Fp<P64>> = (0..alpha.len() as u64)
        .map(|i| <Fp<P64> as PrimeField>::from_u64(i * i + 12345))
        .collect();
    for missing in [0usize, 1, 2, 4] {
        let points = alpha[missing..].to_vec();
        let survivor_values = values[missing..].to_vec();
        let tree_result = TreeInterpolator::new(points.clone()).interpolate(&survivor_values);
        let dense_result = LagrangeBasis::new(points).interpolate(&survivor_values);
        assert_eq!(tree_result, dense_result, "{missing} workers missing");
    }
}
