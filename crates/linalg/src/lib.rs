//! Dense matrices and vectors over prime fields and `f64`, with the
//! multi-threaded kernels used by the workers of the cluster substrate.
//!
//! The AVCC workload is dominated by two shapes of computation:
//!
//! * the **worker kernel** — matrix–vector products `X̃ w` and transpose
//!   products `X̃ᵀ e` over the finite field (the two rounds of the logistic
//!   regression protocol, §IV-A of the paper), and
//! * the **master-side kernels** — encoding (linear combinations of data
//!   blocks), Freivalds verification (vector–matrix and dot products) and
//!   decoding (small linear solves / interpolation).
//!
//! [`Matrix`] is a simple row-major dense container generic over the element
//! type; [`field_ops`] provides the field kernels (serial, and multi-threaded
//! as tasks on the shared [`avcc_pool`] work-stealing pool so they compose
//! with the simulator's per-worker fan-out), and [`real_ops`] provides the
//! `f64` reference kernels plus quantization bridges used by the ML layer and
//! by tests that compare the field pipeline against a floating-point
//! reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field_ops;
pub mod matrix;
pub mod partition;
pub mod real_ops;

pub use field_ops::{
    mat_mat, mat_mat_auto, mat_mat_parallel, mat_vec, mat_vec_auto, mat_vec_parallel, matt_vec,
    matt_vec_auto, matt_vec_parallel, vec_mat,
};
pub use matrix::Matrix;
pub use partition::auto_chunk_count;
pub use real_ops::{dequantize_matrix, quantize_matrix, real_mat_vec, real_matt_vec};
