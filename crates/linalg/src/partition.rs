//! The shared work-splitting helper behind every multi-threaded kernel.
//!
//! The parallel kernels in [`crate::field_ops`] all follow the same shape:
//! split a row range into contiguous chunks, hand each chunk to a scoped
//! thread, and collect the per-chunk results in order. This module hosts that
//! logic once — [`chunk_ranges`] computes the split and [`scoped_map`] runs
//! it — replacing the hand-rolled scoped-thread splitting that used to be
//! copied into each kernel.

use core::ops::Range;

/// Splits `0..total` into at most `parts` contiguous, non-empty,
/// near-equal-length ranges covering the whole span in order.
pub fn chunk_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    if total == 0 || parts == 0 {
        return Vec::new();
    }
    let chunk = total.div_ceil(parts);
    (0..total)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(total))
        .collect()
}

/// Runs `task` over every range on its own scoped thread and returns the
/// results in range order.
///
/// With a single range the task runs on the calling thread (no spawn cost);
/// panics in tasks propagate to the caller.
pub fn scoped_map<R, F>(ranges: Vec<Range<usize>>, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if ranges.len() <= 1 {
        return ranges.into_iter().map(task).collect();
    }
    let task = &task;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(move || task(range)))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_span_in_order_without_overlap() {
        for (total, parts) in [(10, 3), (10, 1), (3, 10), (16, 4), (1, 1), (7, 2)] {
            let ranges = chunk_ranges(total, parts);
            assert!(ranges.len() <= parts);
            let mut next = 0;
            for range in &ranges {
                assert_eq!(range.start, next);
                assert!(range.end > range.start);
                next = range.end;
            }
            assert_eq!(next, total);
        }
    }

    #[test]
    fn degenerate_inputs_yield_no_ranges() {
        assert!(chunk_ranges(0, 4).is_empty());
        assert!(chunk_ranges(4, 0).is_empty());
    }

    #[test]
    fn scoped_map_preserves_range_order() {
        let ranges = chunk_ranges(100, 7);
        let sums = scoped_map(ranges.clone(), |range| range.sum::<usize>());
        let expected: Vec<usize> = ranges.into_iter().map(|range| range.sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn single_range_runs_inline() {
        let results = scoped_map(chunk_ranges(5, 1), |range| range.len());
        assert_eq!(results, vec![5]);
    }
}
