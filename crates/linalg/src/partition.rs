//! The shared work-splitting helper behind every multi-threaded kernel.
//!
//! The parallel kernels in [`crate::field_ops`] all follow the same shape:
//! split a row range into contiguous chunks, run each chunk as a task on the
//! shared work-stealing pool ([`avcc_pool`]), and collect the per-chunk
//! results in order. This module hosts that logic once — [`chunk_ranges`]
//! computes the split and [`pool_map`] runs it.
//!
//! Earlier revisions spawned one scoped OS thread per chunk
//! (`std::thread::scope`), which composed badly with outer parallelism: a
//! simulated cluster dispatching 12 worker tasks, each splitting a blocked
//! kernel 4 ways, would stand up 48 threads on however many cores exist.
//! Pool tasks instead share one set of `AVCC_THREADS` workers, and a task
//! that waits for its chunks executes those same chunks meanwhile (the
//! pool's *scope-local helping* rule), so nested fan-out (executor ×
//! kernel) neither oversubscribes nor deadlocks.

use core::ops::Range;

/// Minimum field elements of work per chunk below which further splitting
/// costs more in task queueing than it recovers in parallelism. Calibrated
/// against the pool-fan-out benchmarks: a chunk this size runs for a few
/// microseconds, comfortably above the pool's per-task overhead.
pub const MIN_CHUNK_ELEMENTS: usize = 1 << 13;

/// Picks how many chunks to split `rows` output rows into, given
/// `elements_per_row` field elements of work per row.
///
/// Replaces the fixed 8-chunk dispatch of earlier revisions with a count
/// derived from the work size and the global pool's width: up to 2× the pool
/// parallelism (oversubscription lets work stealing smooth uneven chunk
/// costs), but never so many that a chunk falls under [`MIN_CHUNK_ELEMENTS`]
/// and never more than one chunk per row. On a single-threaded pool (or for
/// small work) this is 1, so the caller's fallback to the serial kernel
/// kicks in and no queueing cost is paid at all.
pub fn auto_chunk_count(rows: usize, elements_per_row: usize) -> usize {
    let parallelism = avcc_pool::global().parallelism();
    if parallelism <= 1 || rows == 0 || elements_per_row == 0 {
        return 1;
    }
    let by_work = (rows * elements_per_row) / MIN_CHUNK_ELEMENTS;
    (parallelism * 2).min(by_work).clamp(1, rows)
}

/// Splits `0..total` into at most `parts` contiguous, non-empty,
/// near-equal-length ranges covering the whole span in order.
pub fn chunk_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    if total == 0 || parts == 0 {
        return Vec::new();
    }
    let chunk = total.div_ceil(parts);
    (0..total)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(total))
        .collect()
}

/// Runs `task` over every range as tasks on the global work-stealing pool
/// and returns the results in range order.
///
/// With a single range (or a 1-thread pool) the task runs on the calling
/// thread with no queueing cost; panics in tasks propagate to the caller
/// after all sibling tasks have drained.
pub fn pool_map<R, F>(ranges: Vec<Range<usize>>, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    avcc_pool::map_ranges(ranges, task)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_span_in_order_without_overlap() {
        for (total, parts) in [(10, 3), (10, 1), (3, 10), (16, 4), (1, 1), (7, 2)] {
            let ranges = chunk_ranges(total, parts);
            assert!(ranges.len() <= parts);
            let mut next = 0;
            for range in &ranges {
                assert_eq!(range.start, next);
                assert!(range.end > range.start);
                next = range.end;
            }
            assert_eq!(next, total);
        }
    }

    #[test]
    fn degenerate_inputs_yield_no_ranges() {
        assert!(chunk_ranges(0, 4).is_empty());
        assert!(chunk_ranges(4, 0).is_empty());
    }

    #[test]
    fn pool_map_preserves_range_order() {
        let ranges = chunk_ranges(100, 7);
        let sums = pool_map(ranges.clone(), |range| range.sum::<usize>());
        let expected: Vec<usize> = ranges.into_iter().map(|range| range.sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn single_range_runs_inline() {
        let results = pool_map(chunk_ranges(5, 1), |range| range.len());
        assert_eq!(results, vec![5]);
    }

    #[test]
    fn auto_chunk_count_respects_bounds() {
        let parallelism = avcc_pool::global().parallelism();
        // Large work: bounded by pool width × oversubscription and by rows.
        let large = auto_chunk_count(4096, 4096);
        assert!(large >= 1);
        assert!(large <= parallelism * 2);
        assert!(large <= 4096);
        // Tiny work never splits.
        assert_eq!(auto_chunk_count(4, 4), 1);
        // A huge-but-narrow split is still capped by the row count.
        assert!(auto_chunk_count(2, 1 << 20) <= 2);
        // Degenerate shapes.
        assert_eq!(auto_chunk_count(0, 100), 1);
        assert_eq!(auto_chunk_count(100, 0), 1);
    }

    #[test]
    fn auto_chunk_count_scales_with_work() {
        // More work never yields fewer chunks (monotone in the work size).
        let small = auto_chunk_count(64, MIN_CHUNK_ELEMENTS / 16);
        let big = auto_chunk_count(64, MIN_CHUNK_ELEMENTS);
        assert!(small <= big);
    }
}
