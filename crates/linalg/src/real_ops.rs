//! Floating-point reference kernels and quantization bridges.
//!
//! The ML layer keeps the labels, the sigmoid and the accuracy computation in
//! the real domain (as the paper does — only the distributed matrix products
//! run over the field), so it needs `f64` matrix kernels and conversions
//! between `Matrix<f64>` and `Matrix<Fp>`. These conversions implement the
//! paper's quantization step `x_r = round(2^l x)` and the corresponding
//! rescaling on the way back.

use avcc_field::{Fp, PrimeModulus, QuantError, Quantizer};

use crate::matrix::Matrix;

/// `f64` matrix–vector product `A·x`.
///
/// # Panics
/// Panics if `x.len() != A.cols()`.
pub fn real_mat_vec(a: &Matrix<f64>, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), x.len(), "real_mat_vec dimension mismatch");
    a.rows_iter()
        .map(|row| row.iter().zip(x.iter()).map(|(&p, &q)| p * q).sum())
        .collect()
}

/// `f64` transpose–vector product `Aᵀ·y`.
///
/// # Panics
/// Panics if `y.len() != A.rows()`.
pub fn real_matt_vec(a: &Matrix<f64>, y: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows(), y.len(), "real_matt_vec dimension mismatch");
    let mut result = vec![0.0; a.cols()];
    for (row, &scale) in a.rows_iter().zip(y.iter()) {
        for (slot, &value) in result.iter_mut().zip(row.iter()) {
            *slot += scale * value;
        }
    }
    result
}

/// Quantizes an `f64` matrix into the field with `quantizer.bits()` fractional
/// bits, failing on the first element whose magnitude does not fit.
pub fn quantize_matrix<M: PrimeModulus>(
    a: &Matrix<f64>,
    quantizer: Quantizer,
) -> Result<Matrix<Fp<M>>, QuantError> {
    let data = quantizer.quantize_slice::<M>(a.data())?;
    Ok(Matrix::from_vec(a.rows(), a.cols(), data))
}

/// Dequantizes a field matrix whose elements carry a total scale of
/// `2^total_bits` back to `f64`.
pub fn dequantize_matrix<M: PrimeModulus>(a: &Matrix<Fp<M>>, total_bits: u32) -> Matrix<f64> {
    a.map(|element| Quantizer::dequantize_with_scale(element, total_bits))
}

/// Quantizes a real vector with the given quantizer.
pub fn quantize_vector<M: PrimeModulus>(
    values: &[f64],
    quantizer: Quantizer,
) -> Result<Vec<Fp<M>>, QuantError> {
    quantizer.quantize_slice(values)
}

/// Dequantizes a field vector with the given total scale.
pub fn dequantize_vector<M: PrimeModulus>(values: &[Fp<M>], total_bits: u32) -> Vec<f64> {
    Quantizer::dequantize_slice_with_scale(values, total_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field_ops::mat_vec;
    use avcc_field::P25;
    use proptest::prelude::*;

    #[test]
    fn real_mat_vec_matches_manual_example() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(real_mat_vec(&a, &[1.0, 0.5]), vec![2.0, 5.0]);
    }

    #[test]
    fn real_matt_vec_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = [1.0, -1.0, 2.0];
        let expected = real_mat_vec(&a.transpose(), &y);
        assert_eq!(real_matt_vec(&a, &y), expected);
    }

    #[test]
    fn quantize_dequantize_matrix_round_trips() {
        let a = Matrix::from_vec(2, 2, vec![0.5, -1.25, 3.0, 0.03125]);
        let quantizer = Quantizer::new(5);
        let field_matrix = quantize_matrix::<P25>(&a, quantizer).unwrap();
        let back = dequantize_matrix(&field_matrix, 5);
        for (original, recovered) in a.data().iter().zip(back.data().iter()) {
            assert!((original - recovered).abs() <= 1.0 / 64.0);
        }
    }

    #[test]
    fn quantized_pipeline_matches_real_pipeline() {
        // Field-domain X·w with integer X and fixed-point w must agree with the
        // real computation up to quantization error — the property the paper's
        // two-round protocol relies on.
        let x_real = Matrix::from_vec(2, 3, vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0]);
        let w_real = [0.5, -0.25, 1.0];
        let x_field = quantize_matrix::<P25>(&x_real, Quantizer::new(0)).unwrap();
        let w_field = quantize_vector::<P25>(&w_real, Quantizer::new(5)).unwrap();
        let z_field = mat_vec(&x_field, &w_field);
        let z_back = dequantize_vector(&z_field, 5);
        let z_real = real_mat_vec(&x_real, &w_real);
        for (a, b) in z_real.iter().zip(z_back.iter()) {
            assert!((a - b).abs() < 0.1, "{a} vs {b}");
        }
    }

    #[test]
    fn quantize_matrix_propagates_overflow_errors() {
        let a = Matrix::from_vec(1, 1, vec![1e18]);
        assert!(quantize_matrix::<P25>(&a, Quantizer::new(5)).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_quantized_mat_vec_tracks_real(
            entries in proptest::collection::vec(-50.0f64..50.0, 12),
            weights in proptest::collection::vec(-2.0f64..2.0, 4),
        ) {
            let a_real = Matrix::from_vec(3, 4, entries);
            let x_field_matrix = quantize_matrix::<P25>(&a_real, Quantizer::new(8)).unwrap();
            let w_field = quantize_vector::<P25>(&weights, Quantizer::new(8)).unwrap();
            let z = dequantize_vector(&mat_vec(&x_field_matrix, &w_field), 16);
            let z_real = real_mat_vec(&a_real, &weights);
            // Each of the 4 product terms can deviate by about
            // (|x| + |w|) * half-LSB ≈ 52 * 0.5 / 256, so bound by 0.5 total.
            for (a, b) in z_real.iter().zip(z.iter()) {
                prop_assert!((a - b).abs() < 0.5, "{} vs {}", a, b);
            }
        }
    }
}
