//! A row-major dense matrix container.
//!
//! [`Matrix`] is deliberately minimal: it stores elements contiguously in
//! row-major order and exposes the partitioning operations the coding layer
//! needs (splitting a dataset into `K` row blocks, stacking blocks back
//! together) plus simple accessors. Numeric kernels live in
//! [`crate::field_ops`] and [`crate::real_ops`] so that the container itself
//! stays element-type agnostic.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T> Matrix<T> {
    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Self {
        let row_count = rows.len();
        let col_count = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(row_count * col_count);
        for row in rows {
            assert_eq!(row.len(), col_count, "all rows must have equal length");
            data.extend(row);
        }
        Matrix {
            rows: row_count,
            cols: col_count,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major data slice.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying row-major data slice.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    /// A view of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    pub fn get(&self, i: usize, j: usize) -> &T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, value: T) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.cols + j] = value;
    }

    /// Iterates over the rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }
}

impl<T: Copy> Matrix<T> {
    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix<T> {
        let mut data = Vec::with_capacity(self.data.len());
        for j in 0..self.cols {
            for i in 0..self.rows {
                data.push(self.data[i * self.cols + j]);
            }
        }
        Matrix {
            rows: self.cols,
            cols: self.rows,
            data,
        }
    }

    /// Splits the matrix into `parts` consecutive row blocks of equal size.
    ///
    /// This is the data partition `X = [X_1ᵀ, …, X_Kᵀ]ᵀ` used by every coding
    /// scheme in the paper.
    ///
    /// # Panics
    /// Panics if `rows` is not divisible by `parts` or `parts` is zero.
    pub fn split_rows(&self, parts: usize) -> Vec<Matrix<T>> {
        assert!(parts > 0, "cannot split into zero parts");
        assert_eq!(
            self.rows % parts,
            0,
            "{} rows are not divisible into {} equal blocks",
            self.rows,
            parts
        );
        let block_rows = self.rows / parts;
        (0..parts)
            .map(|p| {
                let start = p * block_rows * self.cols;
                let end = start + block_rows * self.cols;
                Matrix {
                    rows: block_rows,
                    cols: self.cols,
                    data: self.data[start..end].to_vec(),
                }
            })
            .collect()
    }

    /// Vertically stacks blocks with identical column counts.
    ///
    /// # Panics
    /// Panics if the blocks disagree on the number of columns or the list is
    /// empty.
    pub fn vstack(blocks: &[Matrix<T>]) -> Matrix<T> {
        assert!(!blocks.is_empty(), "cannot stack zero blocks");
        let cols = blocks[0].cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for block in blocks {
            assert_eq!(
                block.cols, cols,
                "all blocks must have the same column count"
            );
            rows += block.rows;
            data.extend_from_slice(&block.data);
        }
        Matrix { rows, cols, data }
    }

    /// Returns a copy of the sub-matrix consisting of rows `[start, end)`.
    pub fn row_slice(&self, start: usize, end: usize) -> Matrix<T> {
        assert!(
            start <= end && end <= self.rows,
            "invalid row range {start}..{end}"
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Maps every element through `f`, producing a matrix of a new type.
    pub fn map<U, G: FnMut(T) -> U>(&self, mut f: G) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<i64> {
        Matrix::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6])
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.len(), 6);
        assert_eq!(*m.get(0, 2), 3);
        assert_eq!(*m.get(1, 0), 4);
        assert_eq!(m.row(1), &[4, 5, 6]);
    }

    #[test]
    fn zeros_is_default_filled() {
        let m: Matrix<i64> = Matrix::zeros(2, 2);
        assert!(m.data().iter().all(|&x| x == 0));
    }

    #[test]
    fn from_rows_matches_from_vec() {
        let m = Matrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(m, sample());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(vec![vec![1, 2], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_data_length_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut m = sample();
        m.set(0, 1, 99);
        assert_eq!(*m.get(0, 1), 99);
    }

    #[test]
    fn transpose_swaps_dimensions_and_entries() {
        let t = sample().transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(*t.get(2, 0), 3);
        assert_eq!(*t.get(0, 1), 4);
        assert_eq!(t.transpose(), sample());
    }

    #[test]
    fn split_rows_partitions_evenly() {
        let m = Matrix::from_vec(4, 2, (0..8).collect());
        let blocks = m.split_rows(2);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0], Matrix::from_vec(2, 2, vec![0, 1, 2, 3]));
        assert_eq!(blocks[1], Matrix::from_vec(2, 2, vec![4, 5, 6, 7]));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn uneven_split_panics() {
        let _ = sample().split_rows(4);
    }

    #[test]
    fn vstack_inverts_split() {
        let m = Matrix::from_vec(6, 2, (0..12).collect());
        let blocks = m.split_rows(3);
        assert_eq!(Matrix::vstack(&blocks), m);
    }

    #[test]
    #[should_panic(expected = "same column count")]
    fn vstack_rejects_mismatched_columns() {
        let a = Matrix::from_vec(1, 2, vec![1, 2]);
        let b = Matrix::from_vec(1, 3, vec![1, 2, 3]);
        let _ = Matrix::vstack(&[a, b]);
    }

    #[test]
    fn row_slice_extracts_range() {
        let m = Matrix::from_vec(4, 1, vec![10, 20, 30, 40]);
        assert_eq!(m.row_slice(1, 3), Matrix::from_vec(2, 1, vec![20, 30]));
        assert_eq!(m.row_slice(2, 2).rows(), 0);
    }

    #[test]
    fn map_changes_element_type() {
        let m = sample().map(|x| x as f64 * 0.5);
        assert_eq!(*m.get(1, 2), 3.0);
    }

    #[test]
    fn rows_iter_yields_all_rows() {
        let m = sample();
        let rows: Vec<&[i64]> = m.rows_iter().collect();
        assert_eq!(rows, vec![&[1, 2, 3][..], &[4, 5, 6][..]]);
    }
}
