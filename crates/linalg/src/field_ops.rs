//! Field-matrix kernels: matrix–vector, transpose–vector and matrix–matrix
//! products, in serial and multi-threaded form.
//!
//! The worker-side computations of the paper's two-round logistic-regression
//! protocol are exactly these kernels: round one computes `z̃ = X̃ w`
//! ([`mat_vec`]) and round two computes `g̃ = X̃ᵀ e` ([`matt_vec`]). The
//! parallel variants split the row (respectively column) range over scoped
//! threads; they are used by the threaded cluster executor where a worker may
//! own several cores, and by the benchmarks that calibrate the simulator's
//! compute-cost model.

use avcc_field::{dot, Fp, PrimeModulus};

use crate::matrix::Matrix;

/// Serial matrix–vector product `A·x` over the field.
///
/// # Panics
/// Panics if `x.len() != A.cols()`.
pub fn mat_vec<M: PrimeModulus>(a: &Matrix<Fp<M>>, x: &[Fp<M>]) -> Vec<Fp<M>> {
    assert_eq!(a.cols(), x.len(), "mat_vec dimension mismatch");
    a.rows_iter().map(|row| dot(row, x)).collect()
}

/// Serial transpose–vector product `Aᵀ·y` over the field, computed without
/// materializing the transpose.
///
/// # Panics
/// Panics if `y.len() != A.rows()`.
pub fn matt_vec<M: PrimeModulus>(a: &Matrix<Fp<M>>, y: &[Fp<M>]) -> Vec<Fp<M>> {
    assert_eq!(a.rows(), y.len(), "matt_vec dimension mismatch");
    let mut result = vec![Fp::<M>::ZERO; a.cols()];
    for (row, &scale) in a.rows_iter().zip(y.iter()) {
        for (slot, &value) in result.iter_mut().zip(row.iter()) {
            *slot += scale * value;
        }
    }
    result
}

/// Serial matrix–matrix product `A·B` over the field.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn mat_mat<M: PrimeModulus>(a: &Matrix<Fp<M>>, b: &Matrix<Fp<M>>) -> Matrix<Fp<M>> {
    assert_eq!(a.cols(), b.rows(), "mat_mat dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let row = a.row(i);
        for (k, &a_ik) in row.iter().enumerate() {
            if a_ik.is_zero_element() {
                continue;
            }
            let b_row = b.row(k);
            let out_row = out.row_mut(i);
            for (slot, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                *slot += a_ik * b_kj;
            }
        }
    }
    out
}

/// Helper trait so the inner loop can skip structural zeros without importing
/// the `PrimeField` trait at every call site.
trait IsZeroElement {
    fn is_zero_element(&self) -> bool;
}

impl<M: PrimeModulus> IsZeroElement for Fp<M> {
    fn is_zero_element(&self) -> bool {
        self.value() == 0
    }
}

/// Multi-threaded matrix–vector product: rows are split into `threads`
/// contiguous chunks, each processed by a scoped thread.
///
/// Falls back to the serial kernel when `threads <= 1` or the matrix is small
/// enough that threading overhead would dominate.
pub fn mat_vec_parallel<M: PrimeModulus>(
    a: &Matrix<Fp<M>>,
    x: &[Fp<M>],
    threads: usize,
) -> Vec<Fp<M>> {
    assert_eq!(a.cols(), x.len(), "mat_vec_parallel dimension mismatch");
    let rows = a.rows();
    if threads <= 1 || rows < 2 * threads || rows * a.cols() < 1 << 14 {
        return mat_vec(a, x);
    }
    let chunk_rows = rows.div_ceil(threads);
    let mut result = vec![Fp::<M>::ZERO; rows];
    std::thread::scope(|scope| {
        let mut remaining = result.as_mut_slice();
        let mut row_start = 0usize;
        let mut handles = Vec::new();
        while row_start < rows {
            let this_chunk = chunk_rows.min(rows - row_start);
            let (chunk_out, rest) = remaining.split_at_mut(this_chunk);
            remaining = rest;
            let start = row_start;
            handles.push(scope.spawn(move || {
                for (offset, slot) in chunk_out.iter_mut().enumerate() {
                    *slot = dot(a.row(start + offset), x);
                }
            }));
            row_start += this_chunk;
        }
        for handle in handles {
            handle.join().expect("mat_vec_parallel worker thread panicked");
        }
    });
    result
}

/// Multi-threaded transpose–vector product: the row range is split across
/// threads, each producing a partial column accumulation that is then reduced.
pub fn matt_vec_parallel<M: PrimeModulus>(
    a: &Matrix<Fp<M>>,
    y: &[Fp<M>],
    threads: usize,
) -> Vec<Fp<M>> {
    assert_eq!(a.rows(), y.len(), "matt_vec_parallel dimension mismatch");
    let rows = a.rows();
    if threads <= 1 || rows < 2 * threads || rows * a.cols() < 1 << 14 {
        return matt_vec(a, y);
    }
    let chunk_rows = rows.div_ceil(threads);
    let partials: Vec<Vec<Fp<M>>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut row_start = 0usize;
        while row_start < rows {
            let end = (row_start + chunk_rows).min(rows);
            let start = row_start;
            handles.push(scope.spawn(move || {
                let mut partial = vec![Fp::<M>::ZERO; a.cols()];
                for row_index in start..end {
                    let scale = y[row_index];
                    for (slot, &value) in partial.iter_mut().zip(a.row(row_index).iter()) {
                        *slot += scale * value;
                    }
                }
                partial
            }));
            row_start = end;
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("matt_vec_parallel worker thread panicked"))
            .collect()
    });
    let mut result = vec![Fp::<M>::ZERO; a.cols()];
    for partial in partials {
        for (slot, value) in result.iter_mut().zip(partial) {
            *slot += value;
        }
    }
    result
}

/// Left vector–matrix product `rᵀ·A` over the field — the kernel of Freivalds
/// key generation (`s = r · X̃`).
pub fn vec_mat<M: PrimeModulus>(r: &[Fp<M>], a: &Matrix<Fp<M>>) -> Vec<Fp<M>> {
    assert_eq!(r.len(), a.rows(), "vec_mat dimension mismatch");
    matt_vec(a, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{F25, PrimeField};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix<F25> {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| F25::from_u64(rng.gen_range(0..F25::MODULUS)))
                .collect(),
        )
    }

    fn random_vector(rng: &mut StdRng, len: usize) -> Vec<F25> {
        (0..len)
            .map(|_| F25::from_u64(rng.gen_range(0..F25::MODULUS)))
            .collect()
    }

    #[test]
    fn mat_vec_matches_manual_example() {
        let a = Matrix::from_vec(
            2,
            3,
            [1u64, 2, 3, 4, 5, 6].iter().map(|&v| F25::from_u64(v)).collect(),
        );
        let x: Vec<F25> = [1u64, 1, 1].iter().map(|&v| F25::from_u64(v)).collect();
        assert_eq!(mat_vec(&a, &x), vec![F25::from_u64(6), F25::from_u64(15)]);
    }

    #[test]
    fn matt_vec_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_matrix(&mut rng, 13, 7);
        let y = random_vector(&mut rng, 13);
        let via_transpose = mat_vec(&a.transpose(), &y);
        assert_eq!(matt_vec(&a, &y), via_transpose);
    }

    #[test]
    fn mat_mat_matches_mat_vec_per_column() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = random_matrix(&mut rng, 5, 4);
        let b = random_matrix(&mut rng, 4, 3);
        let product = mat_mat(&a, &b);
        for j in 0..3 {
            let column: Vec<F25> = (0..4).map(|k| *b.get(k, j)).collect();
            let expected = mat_vec(&a, &column);
            for i in 0..5 {
                assert_eq!(*product.get(i, j), expected[i]);
            }
        }
    }

    #[test]
    fn parallel_mat_vec_matches_serial() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_matrix(&mut rng, 256, 128);
        let x = random_vector(&mut rng, 128);
        for threads in [1, 2, 4, 7] {
            assert_eq!(mat_vec_parallel(&a, &x, threads), mat_vec(&a, &x));
        }
    }

    #[test]
    fn parallel_matt_vec_matches_serial() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = random_matrix(&mut rng, 300, 64);
        let y = random_vector(&mut rng, 300);
        for threads in [1, 2, 3, 8] {
            assert_eq!(matt_vec_parallel(&a, &y, threads), matt_vec(&a, &y));
        }
    }

    #[test]
    fn small_matrices_fall_back_to_serial_path() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 4, 4);
        let x = random_vector(&mut rng, 4);
        assert_eq!(mat_vec_parallel(&a, &x, 8), mat_vec(&a, &x));
    }

    #[test]
    fn vec_mat_is_left_multiplication() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = random_matrix(&mut rng, 6, 9);
        let r = random_vector(&mut rng, 6);
        assert_eq!(vec_mat(&r, &a), mat_vec(&a.transpose(), &r));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mat_vec_rejects_bad_dimensions() {
        let a: Matrix<F25> = Matrix::zeros(2, 3);
        let _ = mat_vec(&a, &[F25::ZERO; 2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_mat_vec_is_linear(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, 9, 6);
            let x = random_vector(&mut rng, 6);
            let y = random_vector(&mut rng, 6);
            let sum: Vec<F25> = x.iter().zip(y.iter()).map(|(&p, &q)| p + q).collect();
            let lhs = mat_vec(&a, &sum);
            let rhs: Vec<F25> = mat_vec(&a, &x)
                .into_iter()
                .zip(mat_vec(&a, &y))
                .map(|(p, q)| p + q)
                .collect();
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn prop_freivalds_identity_holds(seed in any::<u64>()) {
            // r · (A x) == (rᵀ A) · x — the algebraic identity Freivalds
            // verification relies on.
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, 8, 5);
            let x = random_vector(&mut rng, 5);
            let r = random_vector(&mut rng, 8);
            let ax = mat_vec(&a, &x);
            let lhs = avcc_field::dot(&r, &ax);
            let rta = vec_mat(&r, &a);
            let rhs = avcc_field::dot(&rta, &x);
            prop_assert_eq!(lhs, rhs);
        }
    }
}
