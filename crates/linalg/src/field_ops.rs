//! Field-matrix kernels: matrix–vector, transpose–vector and matrix–matrix
//! products, in serial and multi-threaded form.
//!
//! The worker-side computations of the paper's two-round logistic-regression
//! protocol are exactly these kernels: round one computes `z̃ = X̃ w`
//! ([`mat_vec`]) and round two computes `g̃ = X̃ᵀ e` ([`matt_vec`]).
//!
//! All kernels are built on *lazy reduction* (see [`avcc_field::batch`]):
//! unreduced products accumulate in `u128` lanes and collapse through the
//! modulus's specialized [`PrimeModulus::reduce_wide`] backend once per
//! [`PrimeModulus::WIDE_BATCH`] products, so the inner loops are
//! multiply-add only — no division, no per-element reduction:
//!
//! * [`mat_vec`] — register-blocked: four rows share one streaming pass over
//!   `x`, each with its own lazy accumulator.
//! * [`matt_vec`] — one [`WideAccumulator`] over the output columns; the
//!   matrix streams through row-major exactly once.
//! * [`mat_mat`] — cache-blocked: strips of [`MAT_MAT_ROW_BLOCK`] output rows
//!   share one streaming pass over `B`, so `B` is read `rows/block` times
//!   instead of `rows` times.
//!
//! The parallel variants split the row range with the shared
//! [`crate::partition`] helper and run the chunks as tasks on the global
//! work-stealing pool ([`avcc_pool`]); they are used by the threaded cluster
//! executor where a worker may own several cores, and by the benchmarks that
//! calibrate the simulator's compute-cost model. Because the chunks are pool
//! tasks rather than dedicated OS threads, these kernels can be called from
//! *inside* other pool tasks (the simulated cluster's per-worker dispatch)
//! without oversubscribing the machine: the `threads` argument caps the
//! chunk count, and the pool schedules chunks onto its fixed worker set.

use avcc_field::batch::assert_wide_batch;
use avcc_field::{Fp, PrimeModulus, WideAccumulator};

use crate::matrix::Matrix;
use crate::partition::{auto_chunk_count, chunk_ranges, pool_map};

/// Number of output rows that share one streaming pass over `B` (or over `x`)
/// in the blocked kernels. Chosen so a strip of `u128` accumulator lanes for
/// typical widths stays within L2 while still cutting memory traffic on the
/// streamed operand by the same factor.
pub const MAT_MAT_ROW_BLOCK: usize = 8;

/// Work-size threshold below which the parallel kernels stay serial.
const PARALLEL_MIN_ELEMENTS: usize = 1 << 14;

/// Serial matrix–vector product `A·x` over the field.
///
/// Rows are processed four at a time so each streamed load of `x[j]` feeds
/// four multiply-adds; accumulation is lazy with one reduction per row per
/// [`PrimeModulus::WIDE_BATCH`] products.
///
/// # Panics
/// Panics if `x.len() != A.cols()`.
pub fn mat_vec<M: PrimeModulus>(a: &Matrix<Fp<M>>, x: &[Fp<M>]) -> Vec<Fp<M>> {
    assert_eq!(a.cols(), x.len(), "mat_vec dimension mismatch");
    mat_vec_rows(a, x, 0..a.rows())
}

/// The row-range worker behind [`mat_vec`] / [`mat_vec_parallel`].
fn mat_vec_rows<M: PrimeModulus>(
    a: &Matrix<Fp<M>>,
    x: &[Fp<M>],
    rows: core::ops::Range<usize>,
) -> Vec<Fp<M>> {
    const { assert_wide_batch::<M>() }
    let mut out = Vec::with_capacity(rows.len());
    let mut row = rows.start;
    // Four-row micro-kernel: one pass over x feeds four accumulators.
    while row + 4 <= rows.end {
        let (r0, r1, r2, r3) = (a.row(row), a.row(row + 1), a.row(row + 2), a.row(row + 3));
        let mut acc = [0u128; 4];
        let mut column = 0;
        while column < x.len() {
            let stop = (column + M::WIDE_BATCH).min(x.len());
            for j in column..stop {
                let xj = x[j].value() as u128;
                acc[0] += r0[j].value() as u128 * xj;
                acc[1] += r1[j].value() as u128 * xj;
                acc[2] += r2[j].value() as u128 * xj;
                acc[3] += r3[j].value() as u128 * xj;
            }
            for lane in acc.iter_mut() {
                *lane = M::reduce_wide(*lane) as u128;
            }
            column = stop;
        }
        // Lanes are collapsed to canonical representatives at every chunk
        // boundary, so the final cast is exact.
        out.extend(acc.iter().map(|&lane| Fp::<M>::new(lane as u64)));
        row += 4;
    }
    // Remainder rows: plain lazy dot.
    for r in row..rows.end {
        out.push(avcc_field::dot(a.row(r), x));
    }
    out
}

/// Serial transpose–vector product `Aᵀ·y` over the field, computed without
/// materializing the transpose: one [`WideAccumulator`] over the output
/// columns absorbs `y[i]·A[i,·]` per row, reducing lazily.
///
/// # Panics
/// Panics if `y.len() != A.rows()`.
pub fn matt_vec<M: PrimeModulus>(a: &Matrix<Fp<M>>, y: &[Fp<M>]) -> Vec<Fp<M>> {
    assert_eq!(a.rows(), y.len(), "matt_vec dimension mismatch");
    matt_vec_rows(a, y, 0..a.rows())
}

/// Partial transpose–vector product over a row range (full-width output).
fn matt_vec_rows<M: PrimeModulus>(
    a: &Matrix<Fp<M>>,
    y: &[Fp<M>],
    rows: core::ops::Range<usize>,
) -> Vec<Fp<M>> {
    let mut accumulator = WideAccumulator::<M>::new(a.cols());
    for row in rows {
        accumulator.axpy(y[row], a.row(row));
    }
    accumulator.finish()
}

/// Serial matrix–matrix product `A·B` over the field, cache-blocked: strips
/// of [`MAT_MAT_ROW_BLOCK`] output rows share one streaming pass over `B`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn mat_mat<M: PrimeModulus>(a: &Matrix<Fp<M>>, b: &Matrix<Fp<M>>) -> Matrix<Fp<M>> {
    assert_eq!(a.cols(), b.rows(), "mat_mat dimension mismatch");
    Matrix::from_vec(a.rows(), b.cols(), mat_mat_rows(a, b, 0..a.rows()))
}

/// The row-strip worker behind [`mat_mat`] / [`mat_mat_parallel`]: computes
/// output rows `rows` in row-major order.
fn mat_mat_rows<M: PrimeModulus>(
    a: &Matrix<Fp<M>>,
    b: &Matrix<Fp<M>>,
    rows: core::ops::Range<usize>,
) -> Vec<Fp<M>> {
    let mut out = Vec::with_capacity(rows.len() * b.cols());
    let mut strip_start = rows.start;
    while strip_start < rows.end {
        let strip_end = (strip_start + MAT_MAT_ROW_BLOCK).min(rows.end);
        let mut accumulators: Vec<WideAccumulator<M>> = (strip_start..strip_end)
            .map(|_| WideAccumulator::new(b.cols()))
            .collect();
        // One pass over B serves the whole strip.
        for k in 0..a.cols() {
            let b_row = b.row(k);
            for (offset, accumulator) in accumulators.iter_mut().enumerate() {
                let a_ik = *a.get(strip_start + offset, k);
                if a_ik.value() != 0 {
                    accumulator.axpy(a_ik, b_row);
                }
            }
        }
        for accumulator in accumulators {
            out.extend(accumulator.finish());
        }
        strip_start = strip_end;
    }
    out
}

/// Multi-threaded matrix–vector product: rows are split into `threads`
/// contiguous chunks by the shared [`crate::partition`] helper.
///
/// Falls back to the serial kernel when `threads <= 1` or the matrix is small
/// enough that threading overhead would dominate.
pub fn mat_vec_parallel<M: PrimeModulus>(
    a: &Matrix<Fp<M>>,
    x: &[Fp<M>],
    threads: usize,
) -> Vec<Fp<M>> {
    assert_eq!(a.cols(), x.len(), "mat_vec_parallel dimension mismatch");
    let rows = a.rows();
    if threads <= 1 || rows < 2 * threads || rows * a.cols() < PARALLEL_MIN_ELEMENTS {
        return mat_vec(a, x);
    }
    let partials = pool_map(chunk_ranges(rows, threads), |range| {
        mat_vec_rows(a, x, range)
    });
    partials.into_iter().flatten().collect()
}

/// Multi-threaded transpose–vector product: the row range is split across
/// threads by the shared [`crate::partition`] helper, each producing a
/// partial column accumulation that is then reduced.
pub fn matt_vec_parallel<M: PrimeModulus>(
    a: &Matrix<Fp<M>>,
    y: &[Fp<M>],
    threads: usize,
) -> Vec<Fp<M>> {
    assert_eq!(a.rows(), y.len(), "matt_vec_parallel dimension mismatch");
    let rows = a.rows();
    if threads <= 1 || rows < 2 * threads || rows * a.cols() < PARALLEL_MIN_ELEMENTS {
        return matt_vec(a, y);
    }
    let partials = pool_map(chunk_ranges(rows, threads), |range| {
        matt_vec_rows(a, y, range)
    });
    let mut result = vec![Fp::<M>::ZERO; a.cols()];
    for partial in partials {
        avcc_field::slice_add_assign(&mut result, &partial);
    }
    result
}

/// Multi-threaded matrix–matrix product: output row strips are split across
/// threads by the shared [`crate::partition`] helper.
pub fn mat_mat_parallel<M: PrimeModulus>(
    a: &Matrix<Fp<M>>,
    b: &Matrix<Fp<M>>,
    threads: usize,
) -> Matrix<Fp<M>> {
    assert_eq!(a.cols(), b.rows(), "mat_mat_parallel dimension mismatch");
    let rows = a.rows();
    if threads <= 1 || rows < 2 * threads || rows * a.cols() * b.cols() < PARALLEL_MIN_ELEMENTS {
        return mat_mat(a, b);
    }
    let partials = pool_map(chunk_ranges(rows, threads), |range| {
        mat_mat_rows(a, b, range)
    });
    Matrix::from_vec(rows, b.cols(), partials.into_iter().flatten().collect())
}

/// Matrix–vector product with autotuned fan-out: the chunk count comes from
/// [`crate::partition::auto_chunk_count`] (work size × global pool width)
/// instead of a caller-fixed thread count.
pub fn mat_vec_auto<M: PrimeModulus>(a: &Matrix<Fp<M>>, x: &[Fp<M>]) -> Vec<Fp<M>> {
    mat_vec_parallel(a, x, auto_chunk_count(a.rows(), a.cols()))
}

/// Transpose–vector product with autotuned fan-out (see [`mat_vec_auto`]).
pub fn matt_vec_auto<M: PrimeModulus>(a: &Matrix<Fp<M>>, y: &[Fp<M>]) -> Vec<Fp<M>> {
    matt_vec_parallel(a, y, auto_chunk_count(a.rows(), a.cols()))
}

/// Matrix–matrix product with autotuned fan-out; per output row the work is
/// a `cols × B.cols` pass, which is what the chunk sizing weighs.
pub fn mat_mat_auto<M: PrimeModulus>(a: &Matrix<Fp<M>>, b: &Matrix<Fp<M>>) -> Matrix<Fp<M>> {
    mat_mat_parallel(a, b, auto_chunk_count(a.rows(), a.cols() * b.cols()))
}

/// Left vector–matrix product `rᵀ·A` over the field — the kernel of Freivalds
/// key generation (`s = r · X̃`).
pub fn vec_mat<M: PrimeModulus>(r: &[Fp<M>], a: &Matrix<Fp<M>>) -> Vec<Fp<M>> {
    assert_eq!(r.len(), a.rows(), "vec_mat dimension mismatch");
    matt_vec(a, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avcc_field::{PrimeField, F25, F61, P61};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix<F25> {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| F25::from_u64(rng.gen_range(0..F25::MODULUS)))
                .collect(),
        )
    }

    fn random_vector(rng: &mut StdRng, len: usize) -> Vec<F25> {
        (0..len)
            .map(|_| F25::from_u64(rng.gen_range(0..F25::MODULUS)))
            .collect()
    }

    /// Elementwise reference kernel (the pre-lazy-reduction implementation).
    fn mat_vec_reference(a: &Matrix<F25>, x: &[F25]) -> Vec<F25> {
        a.rows_iter()
            .map(|row| row.iter().zip(x.iter()).map(|(&p, &q)| p * q).sum())
            .collect()
    }

    #[test]
    fn mat_vec_matches_manual_example() {
        let a = Matrix::from_vec(
            2,
            3,
            [1u64, 2, 3, 4, 5, 6]
                .iter()
                .map(|&v| F25::from_u64(v))
                .collect(),
        );
        let x: Vec<F25> = [1u64, 1, 1].iter().map(|&v| F25::from_u64(v)).collect();
        assert_eq!(mat_vec(&a, &x), vec![F25::from_u64(6), F25::from_u64(15)]);
    }

    #[test]
    fn mat_vec_matches_elementwise_reference_across_row_remainders() {
        // 4-row blocking: exercise every remainder class (0..=3 leftover rows).
        let mut rng = StdRng::seed_from_u64(6);
        for rows in [1usize, 2, 3, 4, 5, 7, 8, 9, 12, 15] {
            let a = random_matrix(&mut rng, rows, 11);
            let x = random_vector(&mut rng, 11);
            assert_eq!(mat_vec(&a, &x), mat_vec_reference(&a, &x), "rows = {rows}");
        }
    }

    #[test]
    fn mat_vec_crosses_the_p61_reduction_batch() {
        // Width beyond WIDE_BATCH forces mid-row collapses in F_{2^61-1}.
        let mut rng = StdRng::seed_from_u64(61);
        let cols = P61::WIDE_BATCH * 2 + 3;
        let a = Matrix::from_vec(
            5,
            cols,
            (0..5 * cols)
                .map(|_| F61::from_u64(rng.gen_range(0..F61::MODULUS)))
                .collect(),
        );
        let x: Vec<F61> = (0..cols)
            .map(|_| F61::from_u64(rng.gen_range(0..F61::MODULUS)))
            .collect();
        let reference: Vec<F61> = a
            .rows_iter()
            .map(|row| row.iter().zip(x.iter()).map(|(&p, &q)| p * q).sum())
            .collect();
        assert_eq!(mat_vec(&a, &x), reference);
    }

    #[test]
    fn matt_vec_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_matrix(&mut rng, 13, 7);
        let y = random_vector(&mut rng, 13);
        let via_transpose = mat_vec(&a.transpose(), &y);
        assert_eq!(matt_vec(&a, &y), via_transpose);
    }

    #[test]
    fn mat_mat_matches_mat_vec_per_column() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = random_matrix(&mut rng, 5, 4);
        let b = random_matrix(&mut rng, 4, 3);
        let product = mat_mat(&a, &b);
        for j in 0..3 {
            let column: Vec<F25> = (0..4).map(|k| *b.get(k, j)).collect();
            let expected = mat_vec(&a, &column);
            for (i, &value) in expected.iter().enumerate() {
                assert_eq!(*product.get(i, j), value);
            }
        }
    }

    #[test]
    fn mat_mat_blocking_handles_strip_remainders() {
        let mut rng = StdRng::seed_from_u64(13);
        for rows in [1usize, 7, 8, 9, 17] {
            let a = random_matrix(&mut rng, rows, 6);
            let b = random_matrix(&mut rng, 6, 5);
            let blocked = mat_mat(&a, &b);
            for i in 0..rows {
                let expected: Vec<F25> = (0..5)
                    .map(|j| (0..6).map(|k| *a.get(i, k) * *b.get(k, j)).sum())
                    .collect();
                assert_eq!(blocked.row(i), &expected[..], "rows = {rows}, i = {i}");
            }
        }
    }

    #[test]
    fn parallel_mat_vec_matches_serial() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_matrix(&mut rng, 256, 128);
        let x = random_vector(&mut rng, 128);
        for threads in [1, 2, 4, 7] {
            assert_eq!(mat_vec_parallel(&a, &x, threads), mat_vec(&a, &x));
        }
    }

    #[test]
    fn parallel_matt_vec_matches_serial() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = random_matrix(&mut rng, 300, 64);
        let y = random_vector(&mut rng, 300);
        for threads in [1, 2, 3, 8] {
            assert_eq!(matt_vec_parallel(&a, &y, threads), matt_vec(&a, &y));
        }
    }

    #[test]
    fn parallel_mat_mat_matches_serial() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = random_matrix(&mut rng, 64, 48);
        let b = random_matrix(&mut rng, 48, 32);
        for threads in [1, 2, 3, 8] {
            assert_eq!(mat_mat_parallel(&a, &b, threads), mat_mat(&a, &b));
        }
    }

    #[test]
    fn auto_kernels_match_serial() {
        let mut rng = StdRng::seed_from_u64(15);
        let a = random_matrix(&mut rng, 200, 96);
        let x = random_vector(&mut rng, 96);
        let y = random_vector(&mut rng, 200);
        let b = random_matrix(&mut rng, 96, 40);
        assert_eq!(mat_vec_auto(&a, &x), mat_vec(&a, &x));
        assert_eq!(matt_vec_auto(&a, &y), matt_vec(&a, &y));
        assert_eq!(mat_mat_auto(&a, &b), mat_mat(&a, &b));
    }

    #[test]
    fn small_matrices_fall_back_to_serial_path() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_matrix(&mut rng, 4, 4);
        let x = random_vector(&mut rng, 4);
        assert_eq!(mat_vec_parallel(&a, &x, 8), mat_vec(&a, &x));
    }

    #[test]
    fn vec_mat_is_left_multiplication() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = random_matrix(&mut rng, 6, 9);
        let r = random_vector(&mut rng, 6);
        assert_eq!(vec_mat(&r, &a), mat_vec(&a.transpose(), &r));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mat_vec_rejects_bad_dimensions() {
        let a: Matrix<F25> = Matrix::zeros(2, 3);
        let _ = mat_vec(&a, &[F25::ZERO; 2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_mat_vec_is_linear(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, 9, 6);
            let x = random_vector(&mut rng, 6);
            let y = random_vector(&mut rng, 6);
            let sum: Vec<F25> = x.iter().zip(y.iter()).map(|(&p, &q)| p + q).collect();
            let lhs = mat_vec(&a, &sum);
            let rhs: Vec<F25> = mat_vec(&a, &x)
                .into_iter()
                .zip(mat_vec(&a, &y))
                .map(|(p, q)| p + q)
                .collect();
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn prop_freivalds_identity_holds(seed in any::<u64>()) {
            // r · (A x) == (rᵀ A) · x — the algebraic identity Freivalds
            // verification relies on.
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, 8, 5);
            let x = random_vector(&mut rng, 5);
            let r = random_vector(&mut rng, 8);
            let ax = mat_vec(&a, &x);
            let lhs = avcc_field::dot(&r, &ax);
            let rta = vec_mat(&r, &a);
            let rhs = avcc_field::dot(&rta, &x);
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn prop_mat_mat_matches_reference(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_matrix(&mut rng, 10, 7);
            let b = random_matrix(&mut rng, 7, 6);
            let product = mat_mat(&a, &b);
            for i in 0..10 {
                for j in 0..6 {
                    let expected: F25 = (0..7).map(|k| *a.get(i, k) * *b.get(k, j)).sum();
                    prop_assert_eq!(*product.get(i, j), expected);
                }
            }
        }
    }
}
