//! Pool fan-out equivalence tests: results computed by splitting work into
//! `avcc_pool` scope tasks must be identical to the sequential kernels, for
//! every pool size (including the degenerate 1-thread pool, the
//! `AVCC_THREADS=1` configuration).

use avcc_field::{batch_inverse, Fp, PrimeField, PrimeModulus, F25, P25};
use avcc_linalg::partition::chunk_ranges;
use avcc_linalg::{mat_mat, mat_mat_parallel, Matrix};
use avcc_pool::ThreadPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix<F25> {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| F25::from_u64(rng.gen_range(0..P25::MODULUS)))
            .collect(),
    )
}

/// `mat_mat` computed as an explicit pool-scope fan-out over row strips on a
/// pool of the given size.
fn mat_mat_on_pool(
    pool: &ThreadPool,
    a: &Matrix<F25>,
    b: &Matrix<F25>,
    chunks: usize,
) -> Matrix<F25> {
    let ranges = chunk_ranges(a.rows(), chunks);
    let mut strips: Vec<Option<Matrix<F25>>> = (0..ranges.len()).map(|_| None).collect();
    pool.scope(|scope| {
        for (slot, range) in strips.iter_mut().zip(ranges) {
            scope.spawn(move || {
                let strip = Matrix::from_vec(
                    range.len(),
                    a.cols(),
                    range
                        .clone()
                        .flat_map(|row| a.row(row).iter().copied())
                        .collect(),
                );
                *slot = Some(mat_mat(&strip, b));
            });
        }
    });
    let mut data = Vec::with_capacity(a.rows() * b.cols());
    for strip in strips {
        let strip = strip.expect("strip task did not run");
        for row in 0..strip.rows() {
            data.extend_from_slice(strip.row(row));
        }
    }
    Matrix::from_vec(a.rows(), b.cols(), data)
}

/// `batch_inverse` computed as a pool-scope fan-out over contiguous chunks
/// (each chunk pays its own inversion; the merged result must still match
/// the one-pass sequential sweep exactly).
fn batch_inverse_on_pool(pool: &ThreadPool, values: &[Fp<P25>], chunks: usize) -> Vec<Fp<P25>> {
    let ranges = chunk_ranges(values.len(), chunks);
    let mut parts: Vec<Option<Vec<Fp<P25>>>> = (0..ranges.len()).map(|_| None).collect();
    pool.scope(|scope| {
        for (slot, range) in parts.iter_mut().zip(ranges) {
            scope.spawn(move || *slot = Some(batch_inverse(&values[range])));
        }
    });
    parts
        .into_iter()
        .flat_map(|part| part.expect("chunk task did not run"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_pool_mat_mat_matches_sequential(seed in any::<u64>(), pool_size in 1usize..=4, chunks in 1usize..=7) {
        let pool = ThreadPool::new(pool_size);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, 23, 11);
        let b = random_matrix(&mut rng, 11, 9);
        let sequential = mat_mat(&a, &b);
        let pooled = mat_mat_on_pool(&pool, &a, &b, chunks);
        prop_assert_eq!(pooled, sequential);
    }

    #[test]
    fn prop_pool_batch_inverse_matches_sequential(
        raw in proptest::collection::vec(1..P25::MODULUS, 1..200),
        pool_size in 1usize..=4,
        chunks in 1usize..=9,
    ) {
        let pool = ThreadPool::new(pool_size);
        let values: Vec<Fp<P25>> = raw.iter().map(|&v| Fp::from_u64(v)).collect();
        let sequential = batch_inverse(&values);
        let pooled = batch_inverse_on_pool(&pool, &values, chunks);
        prop_assert_eq!(pooled, sequential);
    }

    #[test]
    fn prop_mat_mat_parallel_matches_serial_on_global_pool(seed in any::<u64>(), threads in 1usize..=8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, 48, 32);
        let b = random_matrix(&mut rng, 32, 24);
        prop_assert_eq!(mat_mat_parallel(&a, &b, threads), mat_mat(&a, &b));
    }
}
