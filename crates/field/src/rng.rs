//! Sampling of uniformly random field elements.
//!
//! Uniform randomness over `F_q` is load-bearing in two places of the AVCC
//! protocol: the Lagrange privacy pads `W_{K+1..K+T}` (Theorem 1, T-privacy)
//! and the Freivalds verification keys `r` (the `1/q` soundness error of the
//! integrity check). Both must be sampled uniformly, which
//! [`random_element`] guarantees via rejection-free modular sampling from the
//! RNG's 64-bit output (the modulo bias is below `2^-38` for the 25-bit field
//! and is irrelevant for the statistical guarantees reproduced here; tests
//! check uniformity empirically).

use rand::Rng;

use crate::fp::{Fp, PrimeModulus};

/// Samples a uniformly random field element.
pub fn random_element<M: PrimeModulus, R: Rng + ?Sized>(rng: &mut R) -> Fp<M> {
    // gen_range on the canonical range is unbiased (rand uses rejection).
    Fp::<M>::new(rng.gen_range(0..M::MODULUS))
}

/// Samples a vector of `len` uniformly random field elements.
pub fn random_vector<M: PrimeModulus, R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<Fp<M>> {
    (0..len).map(|_| random_element(rng)).collect()
}

/// Samples a row-major `rows × cols` matrix of uniformly random elements.
pub fn random_matrix<M: PrimeModulus, R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
) -> Vec<Fp<M>> {
    random_vector(rng, rows * cols)
}

/// Samples a vector of `len` *nonzero* random field elements (used for
/// evaluation-point selection where zero would collide with the origin).
pub fn random_nonzero_vector<M: PrimeModulus, R: Rng + ?Sized>(
    rng: &mut R,
    len: usize,
) -> Vec<Fp<M>> {
    (0..len)
        .map(|_| Fp::<M>::new(rng.gen_range(1..M::MODULUS)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::{PrimeField, P25, P251};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_elements_are_canonical() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let e: Fp<P25> = random_element(&mut rng);
            assert!(e.to_u64() < P25::MODULUS);
        }
    }

    #[test]
    fn random_vector_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(2);
        let v: Vec<Fp<P25>> = random_vector(&mut rng, 37);
        assert_eq!(v.len(), 37);
    }

    #[test]
    fn random_matrix_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(3);
        let m: Vec<Fp<P25>> = random_matrix(&mut rng, 4, 9);
        assert_eq!(m.len(), 36);
    }

    #[test]
    fn nonzero_vector_has_no_zeros() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: Vec<Fp<P251>> = random_nonzero_vector(&mut rng, 5000);
        assert!(v.iter().all(|e| !e.is_zero()));
    }

    #[test]
    fn sampling_is_roughly_uniform_in_small_field() {
        // Chi-square style sanity check over F_251: each residue should appear
        // close to count/251 times.
        let mut rng = StdRng::seed_from_u64(5);
        let samples = 251 * 400;
        let mut histogram = vec![0u32; 251];
        for _ in 0..samples {
            let e: Fp<P251> = random_element(&mut rng);
            histogram[e.to_u64() as usize] += 1;
        }
        let expected = 400.0;
        for (residue, &count) in histogram.iter().enumerate() {
            let deviation = (count as f64 - expected).abs() / expected;
            assert!(
                deviation < 0.35,
                "residue {residue} count {count} deviates too much from {expected}"
            );
        }
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<Fp<P25>> = random_vector(&mut a, 16);
        let vb: Vec<Fp<P25>> = random_vector(&mut b, 16);
        assert_eq!(va, vb);
    }
}
