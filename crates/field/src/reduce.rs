//! Specialized wide modular reduction: `u128 → [0, q)` without hardware
//! division.
//!
//! Every hot loop in the AVCC pipeline (Lagrange encoding, the worker kernels
//! `X̃w` / `X̃ᵀe`, Freivalds verification, RS decoding) bottoms out in a
//! multiply-reduce of two canonical representatives. A generic
//! `(a as u128 * b as u128) % q` compiles to a 128-bit division — dozens of
//! cycles on the hottest instruction in the system. This module provides
//! branch-light alternatives, selected per modulus through
//! [`crate::fp::PrimeModulus::reduce_wide`]:
//!
//! * [`reduce_mersenne61`] — for `q = 2^61 − 1`: `2^61 ≡ 1 (mod q)`, so a
//!   value folds as `(x & (2^61−1)) + (x >> 61)`. Three folds take any `u128`
//!   below `2^61 + 1`; one conditional subtraction lands in `[0, q)`.
//! * [`reduce_pseudo_mersenne25`] — for `q = 2^25 − 39`: `2^25 ≡ 39 (mod q)`,
//!   so a value folds as `(x & (2^25−1)) + 39·(x >> 25)`, shedding ≈19.7 bits
//!   per fold. Products of canonical representatives are below `2^50`, so the
//!   hot path is three folds plus one conditional subtraction.
//! * [`reduce_goldilocks64`] — for the NTT-friendly Goldilocks prime
//!   `q = 2^64 − 2^32 + 1`: with `ε = 2^32 − 1` the identities `2^64 ≡ ε` and
//!   `2^96 ≡ −1 (mod q)` collapse a 128-bit value
//!   `x = lo + 2^64·hi_lo + 2^96·hi_hi` (where `hi_lo`, `hi_hi` are the two
//!   32-bit halves of the high word) into `lo + ε·hi_lo − hi_hi` using only
//!   64-bit adds, one 32×32→64 multiply and two carry corrections.
//! * [`reduce_barrett`] — the generic fallback (used by `F_251` and any future
//!   modulus without a special form): one 128×128→256-bit high multiply by the
//!   precomputed `μ = ⌊2^128 / q⌋` estimates the quotient to within 2, then at
//!   most two conditional subtractions correct the remainder.
//!
//! All three accept the **full** `u128` range, which is what lets the batch
//! kernels ([`crate::batch`]) accumulate many unreduced products and reduce
//! once per lane.

/// The high 128 bits of the 256-bit product `a · b`.
#[inline]
pub const fn mulhi_u128(a: u128, b: u128) -> u128 {
    const LO: u128 = (1u128 << 64) - 1;
    let (a_lo, a_hi) = (a & LO, a >> 64);
    let (b_lo, b_hi) = (b & LO, b >> 64);
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    // Carries out of the middle 64-bit column.
    let mid = (ll >> 64) + (lh & LO) + (hl & LO);
    hh + (lh >> 64) + (hl >> 64) + (mid >> 64)
}

/// Barrett constant `μ = ⌊2^128 / q⌋` for a modulus `q`.
///
/// `q` is prime (in particular, not a power of two), so
/// `⌊(2^128 − 1) / q⌋ = ⌊2^128 / q⌋` and the computation stays in `u128`.
#[inline]
pub const fn barrett_mu(modulus: u64) -> u128 {
    u128::MAX / modulus as u128
}

/// Barrett reduction of a full-range `u128` by a modulus below `2^64`.
///
/// With `q̂ = mulhi(x, μ)` the true quotient satisfies
/// `q̂ ≤ ⌊x/q⌋ ≤ q̂ + 2`, so after subtracting `q̂·q` at most two conditional
/// subtractions remain — no division anywhere.
#[inline]
pub const fn reduce_barrett(value: u128, modulus: u64, mu: u128) -> u64 {
    let quotient = mulhi_u128(value, mu);
    let mut remainder = value - quotient * modulus as u128;
    while remainder >= modulus as u128 {
        remainder -= modulus as u128;
    }
    remainder as u64
}

/// Mersenne reduction of a full-range `u128` modulo `q = 2^61 − 1`.
#[inline]
pub const fn reduce_mersenne61(value: u128) -> u64 {
    const Q: u64 = (1u64 << 61) - 1;
    const MASK: u128 = (1u128 << 61) - 1;
    // 128 bits → ≤ 68 bits → ≤ 62 bits → ≤ 2^61.
    let folded = (value & MASK) + (value >> 61);
    let folded = (folded & MASK) + (folded >> 61);
    let folded = ((folded & MASK) + (folded >> 61)) as u64;
    if folded >= Q {
        folded - Q
    } else {
        folded
    }
}

/// Pseudo-Mersenne reduction of a full-range `u128` modulo `q = 2^25 − 39`
/// (`2^25 ≡ 39`).
#[inline]
pub const fn reduce_pseudo_mersenne25(value: u128) -> u64 {
    const Q: u64 = (1u64 << 25) - 39;
    const MASK128: u128 = (1u128 << 25) - 1;
    const MASK: u64 = (1u64 << 25) - 1;
    // Each fold sheds ≈19.7 bits. Values below 2^64 (in particular any
    // product of canonical representatives, < 2^50) skip this loop entirely.
    let mut wide = value;
    while wide >> 64 != 0 {
        wide = (wide & MASK128) + 39 * (wide >> 25);
    }
    // 64 bits → ≤ 45 bits → ≤ 26 bits → ≤ 2^25 + 38.
    let x = wide as u64;
    let x = (x & MASK) + 39 * (x >> 25);
    let x = (x & MASK) + 39 * (x >> 25);
    let x = (x & MASK) + 39 * (x >> 25);
    if x >= Q {
        x - Q
    } else {
        x
    }
}

/// The Goldilocks prime `q = 2^64 − 2^32 + 1`.
pub const GOLDILOCKS: u64 = 0xFFFF_FFFF_0000_0001;

/// `ε = 2^32 − 1 = 2^64 mod q` for the Goldilocks prime.
const GOLDILOCKS_EPSILON: u64 = 0xFFFF_FFFF;

/// Goldilocks reduction of a full-range `u128` modulo `q = 2^64 − 2^32 + 1`.
///
/// Splitting `x = lo + 2^64·hi_lo + 2^96·hi_hi` (with `hi_lo`, `hi_hi` the
/// 32-bit halves of the high word) and using `2^64 ≡ ε = 2^32 − 1`,
/// `2^96 ≡ −1 (mod q)` gives `x ≡ lo − hi_hi + ε·hi_lo`. Both carry cases are
/// folded back through the same identities, so the whole reduction is
/// branch-light 64-bit arithmetic — cheaper than Barrett's 128×128 high
/// multiply, which matters because `WIDE_BATCH = 1` for this modulus (the
/// batch kernels reduce after every product).
#[inline]
pub const fn reduce_goldilocks64(value: u128) -> u64 {
    let lo = value as u64;
    let hi = (value >> 64) as u64;
    let hi_hi = hi >> 32;
    let hi_lo = hi & GOLDILOCKS_EPSILON;
    // t0 = lo − hi_hi (mod q). On borrow the wrapped value is `true + 2^64`,
    // and `2^64 ≡ ε`, so subtract ε again — this cannot re-borrow because a
    // borrow implies the wrapped value is at least `2^64 − 2^32 + 1`.
    let (mut t0, borrow) = lo.overflowing_sub(hi_hi);
    if borrow {
        t0 = t0.wrapping_sub(GOLDILOCKS_EPSILON);
    }
    // t1 = ε·hi_lo ≤ (2^32 − 1)^2 < 2^64.
    let t1 = GOLDILOCKS_EPSILON * hi_lo;
    // t2 = t0 + t1 (mod q). On carry the wrapped value is `true − 2^64`, so
    // add ε back — this cannot re-carry because `t1 ≤ (2^32 − 1)^2` keeps the
    // wrapped value below `2^64 − 2^33`.
    let (mut t2, carry) = t0.overflowing_add(t1);
    if carry {
        t2 = t2.wrapping_add(GOLDILOCKS_EPSILON);
    }
    if t2 >= GOLDILOCKS {
        t2 - GOLDILOCKS
    } else {
        t2
    }
}

/// `−q⁻¹ mod 2^64` for an odd modulus `q` — the REDC constant of the
/// Montgomery backend ([`redc`]).
///
/// Computed by Hensel lifting: starting from the 3-bit-exact seed `x = q`
/// (every odd `q` satisfies `q·q ≡ 1 (mod 8)`), each Newton step
/// `x ← x·(2 − q·x)` doubles the number of correct low bits, so five steps
/// reach 96 ≥ 64 bits.
///
/// # Panics
/// Panics (at compile time, in const contexts) if `q` is even — Montgomery
/// reduction requires `gcd(q, 2^64) = 1`.
pub const fn mont_neg_qinv(modulus: u64) -> u64 {
    assert!(
        modulus & 1 == 1,
        "Montgomery reduction needs an odd modulus"
    );
    let mut inverse = modulus;
    let mut step = 0;
    while step < 5 {
        inverse = inverse.wrapping_mul(2u64.wrapping_sub(modulus.wrapping_mul(inverse)));
        step += 1;
    }
    inverse.wrapping_neg()
}

/// The Montgomery radix residue `R = 2^64 mod q`.
///
/// This is also the Montgomery representation of `1`, i.e. the multiplicative
/// identity of the REDC domain.
pub const fn mont_r(modulus: u64) -> u64 {
    ((u64::MAX % modulus) + 1) % modulus
}

/// The Montgomery conversion constant `R² = 2^128 mod q`:
/// `redc(x · R²) = x·R mod q` lifts a canonical value into the domain.
pub const fn mont_r2(modulus: u64) -> u64 {
    (((u128::MAX % modulus as u128) + 1) % modulus as u128) as u64
}

/// Montgomery reduction: maps `t < q·2^64` to `t · 2^{-64} mod q` in `[0, q)`.
///
/// The classic REDC step: `m = (t mod 2^64)·(−q⁻¹) mod 2^64` makes `t + m·q`
/// divisible by `2^64`, and the shifted value is below `2q`, so one
/// conditional subtraction lands in `[0, q)`. A carry out of the 128-bit sum
/// contributes exactly `2^64` to the shifted value and implies it exceeds
/// `q`, so it is folded by subtracting `q` once via
/// `q.wrapping_neg() = 2^64 − q`.
///
/// Unlike the [`reduce_barrett`]-family backends this does **not** accept the
/// full `u128` range — callers must keep `t < q·2^64` (any product of two
/// canonical representatives qualifies, as does any `u64`).
#[inline]
pub const fn redc(t: u128, modulus: u64, neg_qinv: u64) -> u64 {
    let m = (t as u64).wrapping_mul(neg_qinv);
    let (sum, carry) = t.overflowing_add(m as u128 * modulus as u128);
    let hi = (sum >> 64) as u64;
    // On carry the true shifted value is `hi + 2^64 < 2q`, so subtracting `q`
    // once (as the wrapping add of `2^64 − q`) cannot overflow and lands
    // below `q` directly.
    let folded = if carry {
        hi.wrapping_add(modulus.wrapping_neg())
    } else {
        hi
    };
    if folded >= modulus {
        folded - modulus
    } else {
        folded
    }
}

/// Modular exponentiation by squaring in the Goldilocks field, usable in
/// `const` contexts (it computes the 2-adic root-of-unity constant of
/// [`crate::fp::P64`] at compile time).
#[inline]
pub const fn pow_goldilocks64(base: u64, mut exponent: u64) -> u64 {
    let mut base = reduce_goldilocks64(base as u128);
    let mut accumulator: u64 = 1;
    while exponent > 0 {
        if exponent & 1 == 1 {
            accumulator = reduce_goldilocks64(accumulator as u128 * base as u128);
        }
        base = reduce_goldilocks64(base as u128 * base as u128);
        exponent >>= 1;
    }
    accumulator
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const P61: u64 = (1u64 << 61) - 1;
    const P25: u64 = (1u64 << 25) - 39;
    const P251: u64 = 251;

    fn naive(value: u128, modulus: u64) -> u64 {
        (value % modulus as u128) as u64
    }

    /// Boundary inputs every backend must reduce exactly: 0, 1, q−1, q,
    /// (q−1)², and the extremes of the `u64`/`u128` ranges.
    fn boundary_inputs(modulus: u64) -> Vec<u128> {
        let q = modulus as u128;
        vec![
            0,
            1,
            q - 1,
            q,
            q + 1,
            (q - 1) * (q - 1),
            (q - 1) * (q - 1) + q,
            u64::MAX as u128,
            u64::MAX as u128 + 1,
            u128::MAX - 1,
            u128::MAX,
        ]
    }

    #[test]
    fn mulhi_matches_truncated_schoolbook() {
        assert_eq!(mulhi_u128(0, u128::MAX), 0);
        assert_eq!(mulhi_u128(u128::MAX, u128::MAX), u128::MAX - 1);
        assert_eq!(mulhi_u128(1 << 64, 1 << 64), 1);
        assert_eq!(mulhi_u128(u128::MAX, 2), 1);
    }

    #[test]
    fn mersenne61_matches_naive_on_boundaries() {
        for input in boundary_inputs(P61) {
            assert_eq!(reduce_mersenne61(input), naive(input, P61), "input {input}");
        }
    }

    #[test]
    fn pseudo_mersenne25_matches_naive_on_boundaries() {
        for input in boundary_inputs(P25) {
            assert_eq!(
                reduce_pseudo_mersenne25(input),
                naive(input, P25),
                "input {input}"
            );
        }
    }

    #[test]
    fn goldilocks_matches_naive_on_boundaries() {
        for input in boundary_inputs(GOLDILOCKS) {
            assert_eq!(
                reduce_goldilocks64(input),
                naive(input, GOLDILOCKS),
                "input {input}"
            );
        }
        // The carry/borrow corner cases: high word maximizing each half.
        for hi in [
            0u64,
            1,
            GOLDILOCKS_EPSILON,
            GOLDILOCKS_EPSILON + 1,
            u64::MAX - 1,
            u64::MAX,
        ] {
            for lo in [0u64, 1, GOLDILOCKS - 1, GOLDILOCKS, u64::MAX] {
                let input = (hi as u128) << 64 | lo as u128;
                assert_eq!(
                    reduce_goldilocks64(input),
                    naive(input, GOLDILOCKS),
                    "hi {hi}, lo {lo}"
                );
            }
        }
    }

    #[test]
    fn goldilocks_pow_matches_naive_references() {
        // 7 generates the multiplicative group; the 2-adic subgroup generator
        // 7^((q−1)/2^32) has order exactly 2^32.
        let root = pow_goldilocks64(7, (GOLDILOCKS - 1) >> 32);
        assert_eq!(root, 1_753_635_133_440_165_772);
        assert_eq!(pow_goldilocks64(root, 1 << 31), GOLDILOCKS - 1);
        assert_eq!(pow_goldilocks64(5, 0), 1);
        assert_eq!(pow_goldilocks64(GOLDILOCKS + 3, 2), 9);
    }

    const GOLD: u64 = GOLDILOCKS;
    const ALL_MODULI: [u64; 4] = [P25, P61, P251, GOLD];

    #[test]
    fn mont_constants_satisfy_their_defining_identities() {
        for modulus in ALL_MODULI {
            let neg_qinv = mont_neg_qinv(modulus);
            // q · (−q⁻¹) ≡ −1 (mod 2^64).
            assert_eq!(
                modulus.wrapping_mul(neg_qinv),
                u64::MAX,
                "modulus {modulus}"
            );
            assert_eq!(mont_r(modulus) as u128, (1u128 << 64) % modulus as u128);
            let r = mont_r(modulus) as u128;
            assert_eq!(mont_r2(modulus) as u128, r * r % modulus as u128);
        }
    }

    #[test]
    fn redc_divides_by_the_radix_exactly() {
        // redc(t) = t · 2^{-64} mod q, checked as redc(t) · 2^64 ≡ t (mod q).
        for modulus in ALL_MODULI {
            let neg_qinv = mont_neg_qinv(modulus);
            let q = modulus as u128;
            let boundary_products: Vec<u128> = vec![
                0,
                1,
                q - 1,
                q,
                (q - 1) * (q - 1),
                (q - 1) * mont_r2(modulus) as u128,
                (q * (1u128 << 64)) - 1, // largest admissible input
            ];
            for t in boundary_products {
                let reduced = redc(t, modulus, neg_qinv) as u128;
                assert!(reduced < q, "modulus {modulus}, input {t}");
                let back = reduced * ((1u128 << 64) % q) % q;
                assert_eq!(back, t % q, "modulus {modulus}, input {t}");
            }
        }
    }

    #[test]
    fn redc_round_trips_through_the_montgomery_domain() {
        for modulus in ALL_MODULI {
            let neg_qinv = mont_neg_qinv(modulus);
            let r2 = mont_r2(modulus);
            for raw in [0u64, 1, 2, modulus - 2, modulus - 1] {
                // to_montgomery then from_montgomery is the identity.
                let lifted = redc(raw as u128 * r2 as u128, modulus, neg_qinv);
                let lowered = redc(lifted as u128, modulus, neg_qinv);
                assert_eq!(lowered, raw, "modulus {modulus}, raw {raw}");
            }
            // The Montgomery identity element is R mod q: lifting 1 is
            // redc(1 · R²).
            assert_eq!(
                redc(r2 as u128, modulus, neg_qinv),
                mont_r(modulus),
                "modulus {modulus}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn mont_neg_qinv_rejects_even_moduli() {
        let _ = mont_neg_qinv(1 << 32);
    }

    #[test]
    fn barrett_matches_naive_on_boundaries_for_all_moduli() {
        for modulus in [P25, P61, P251] {
            let mu = barrett_mu(modulus);
            for input in boundary_inputs(modulus) {
                assert_eq!(
                    reduce_barrett(input, modulus, mu),
                    naive(input, modulus),
                    "modulus {modulus}, input {input}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_mersenne61_matches_naive(hi in any::<u64>(), lo in any::<u64>()) {
            let input = (hi as u128) << 64 | lo as u128;
            prop_assert_eq!(reduce_mersenne61(input), naive(input, P61));
        }

        #[test]
        fn prop_pseudo_mersenne25_matches_naive(hi in any::<u64>(), lo in any::<u64>()) {
            let input = (hi as u128) << 64 | lo as u128;
            prop_assert_eq!(reduce_pseudo_mersenne25(input), naive(input, P25));
        }

        #[test]
        fn prop_goldilocks_matches_naive(hi in any::<u64>(), lo in any::<u64>()) {
            let input = (hi as u128) << 64 | lo as u128;
            prop_assert_eq!(reduce_goldilocks64(input), naive(input, GOLDILOCKS));
        }

        #[test]
        fn prop_barrett_matches_naive_all_moduli(hi in any::<u64>(), lo in any::<u64>()) {
            let input = (hi as u128) << 64 | lo as u128;
            for modulus in [P25, P61, P251, GOLDILOCKS] {
                let mu = barrett_mu(modulus);
                prop_assert_eq!(reduce_barrett(input, modulus, mu), naive(input, modulus));
            }
        }

        #[test]
        fn prop_redc_matches_naive_division(a in any::<u64>(), b in any::<u64>()) {
            // Products of canonical representatives — the only shape the hot
            // path feeds REDC — reduce to a·b·2^{-64} mod q exactly.
            for modulus in ALL_MODULI {
                let neg_qinv = mont_neg_qinv(modulus);
                let (a, b) = (a % modulus, b % modulus);
                let t = a as u128 * b as u128;
                let reduced = redc(t, modulus, neg_qinv) as u128;
                let back = reduced * ((1u128 << 64) % modulus as u128) % modulus as u128;
                prop_assert_eq!(back, t % modulus as u128);
            }
        }

        #[test]
        fn prop_product_range_reduces_exactly(a in 0..P61, b in 0..P61) {
            // The hot-path shape: products of canonical representatives.
            let product = a as u128 * b as u128;
            prop_assert_eq!(reduce_mersenne61(product), naive(product, P61));
        }
    }
}
