//! Specialized wide modular reduction: `u128 → [0, q)` without hardware
//! division.
//!
//! Every hot loop in the AVCC pipeline (Lagrange encoding, the worker kernels
//! `X̃w` / `X̃ᵀe`, Freivalds verification, RS decoding) bottoms out in a
//! multiply-reduce of two canonical representatives. A generic
//! `(a as u128 * b as u128) % q` compiles to a 128-bit division — dozens of
//! cycles on the hottest instruction in the system. This module provides
//! branch-light alternatives, selected per modulus through
//! [`crate::fp::PrimeModulus::reduce_wide`]:
//!
//! * [`reduce_mersenne61`] — for `q = 2^61 − 1`: `2^61 ≡ 1 (mod q)`, so a
//!   value folds as `(x & (2^61−1)) + (x >> 61)`. Three folds take any `u128`
//!   below `2^61 + 1`; one conditional subtraction lands in `[0, q)`.
//! * [`reduce_pseudo_mersenne25`] — for `q = 2^25 − 39`: `2^25 ≡ 39 (mod q)`,
//!   so a value folds as `(x & (2^25−1)) + 39·(x >> 25)`, shedding ≈19.7 bits
//!   per fold. Products of canonical representatives are below `2^50`, so the
//!   hot path is three folds plus one conditional subtraction.
//! * [`reduce_barrett`] — the generic fallback (used by `F_251` and any future
//!   modulus without a special form): one 128×128→256-bit high multiply by the
//!   precomputed `μ = ⌊2^128 / q⌋` estimates the quotient to within 2, then at
//!   most two conditional subtractions correct the remainder.
//!
//! All three accept the **full** `u128` range, which is what lets the batch
//! kernels ([`crate::batch`]) accumulate many unreduced products and reduce
//! once per lane.

/// The high 128 bits of the 256-bit product `a · b`.
#[inline]
pub const fn mulhi_u128(a: u128, b: u128) -> u128 {
    const LO: u128 = (1u128 << 64) - 1;
    let (a_lo, a_hi) = (a & LO, a >> 64);
    let (b_lo, b_hi) = (b & LO, b >> 64);
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    // Carries out of the middle 64-bit column.
    let mid = (ll >> 64) + (lh & LO) + (hl & LO);
    hh + (lh >> 64) + (hl >> 64) + (mid >> 64)
}

/// Barrett constant `μ = ⌊2^128 / q⌋` for a modulus `q`.
///
/// `q` is prime (in particular, not a power of two), so
/// `⌊(2^128 − 1) / q⌋ = ⌊2^128 / q⌋` and the computation stays in `u128`.
#[inline]
pub const fn barrett_mu(modulus: u64) -> u128 {
    u128::MAX / modulus as u128
}

/// Barrett reduction of a full-range `u128` by a modulus below `2^63`.
///
/// With `q̂ = mulhi(x, μ)` the true quotient satisfies
/// `q̂ ≤ ⌊x/q⌋ ≤ q̂ + 2`, so after subtracting `q̂·q` at most two conditional
/// subtractions remain — no division anywhere.
#[inline]
pub const fn reduce_barrett(value: u128, modulus: u64, mu: u128) -> u64 {
    let quotient = mulhi_u128(value, mu);
    let mut remainder = value - quotient * modulus as u128;
    while remainder >= modulus as u128 {
        remainder -= modulus as u128;
    }
    remainder as u64
}

/// Mersenne reduction of a full-range `u128` modulo `q = 2^61 − 1`.
#[inline]
pub const fn reduce_mersenne61(value: u128) -> u64 {
    const Q: u64 = (1u64 << 61) - 1;
    const MASK: u128 = (1u128 << 61) - 1;
    // 128 bits → ≤ 68 bits → ≤ 62 bits → ≤ 2^61.
    let folded = (value & MASK) + (value >> 61);
    let folded = (folded & MASK) + (folded >> 61);
    let folded = ((folded & MASK) + (folded >> 61)) as u64;
    if folded >= Q {
        folded - Q
    } else {
        folded
    }
}

/// Pseudo-Mersenne reduction of a full-range `u128` modulo `q = 2^25 − 39`
/// (`2^25 ≡ 39`).
#[inline]
pub const fn reduce_pseudo_mersenne25(value: u128) -> u64 {
    const Q: u64 = (1u64 << 25) - 39;
    const MASK128: u128 = (1u128 << 25) - 1;
    const MASK: u64 = (1u64 << 25) - 1;
    // Each fold sheds ≈19.7 bits. Values below 2^64 (in particular any
    // product of canonical representatives, < 2^50) skip this loop entirely.
    let mut wide = value;
    while wide >> 64 != 0 {
        wide = (wide & MASK128) + 39 * (wide >> 25);
    }
    // 64 bits → ≤ 45 bits → ≤ 26 bits → ≤ 2^25 + 38.
    let x = wide as u64;
    let x = (x & MASK) + 39 * (x >> 25);
    let x = (x & MASK) + 39 * (x >> 25);
    let x = (x & MASK) + 39 * (x >> 25);
    if x >= Q {
        x - Q
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const P61: u64 = (1u64 << 61) - 1;
    const P25: u64 = (1u64 << 25) - 39;
    const P251: u64 = 251;

    fn naive(value: u128, modulus: u64) -> u64 {
        (value % modulus as u128) as u64
    }

    /// Boundary inputs every backend must reduce exactly: 0, 1, q−1, q,
    /// (q−1)², and the extremes of the `u64`/`u128` ranges.
    fn boundary_inputs(modulus: u64) -> Vec<u128> {
        let q = modulus as u128;
        vec![
            0,
            1,
            q - 1,
            q,
            q + 1,
            (q - 1) * (q - 1),
            (q - 1) * (q - 1) + q,
            u64::MAX as u128,
            u64::MAX as u128 + 1,
            u128::MAX - 1,
            u128::MAX,
        ]
    }

    #[test]
    fn mulhi_matches_truncated_schoolbook() {
        assert_eq!(mulhi_u128(0, u128::MAX), 0);
        assert_eq!(mulhi_u128(u128::MAX, u128::MAX), u128::MAX - 1);
        assert_eq!(mulhi_u128(1 << 64, 1 << 64), 1);
        assert_eq!(mulhi_u128(u128::MAX, 2), 1);
    }

    #[test]
    fn mersenne61_matches_naive_on_boundaries() {
        for input in boundary_inputs(P61) {
            assert_eq!(reduce_mersenne61(input), naive(input, P61), "input {input}");
        }
    }

    #[test]
    fn pseudo_mersenne25_matches_naive_on_boundaries() {
        for input in boundary_inputs(P25) {
            assert_eq!(
                reduce_pseudo_mersenne25(input),
                naive(input, P25),
                "input {input}"
            );
        }
    }

    #[test]
    fn barrett_matches_naive_on_boundaries_for_all_moduli() {
        for modulus in [P25, P61, P251] {
            let mu = barrett_mu(modulus);
            for input in boundary_inputs(modulus) {
                assert_eq!(
                    reduce_barrett(input, modulus, mu),
                    naive(input, modulus),
                    "modulus {modulus}, input {input}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_mersenne61_matches_naive(hi in any::<u64>(), lo in any::<u64>()) {
            let input = (hi as u128) << 64 | lo as u128;
            prop_assert_eq!(reduce_mersenne61(input), naive(input, P61));
        }

        #[test]
        fn prop_pseudo_mersenne25_matches_naive(hi in any::<u64>(), lo in any::<u64>()) {
            let input = (hi as u128) << 64 | lo as u128;
            prop_assert_eq!(reduce_pseudo_mersenne25(input), naive(input, P25));
        }

        #[test]
        fn prop_barrett_matches_naive_all_moduli(hi in any::<u64>(), lo in any::<u64>()) {
            let input = (hi as u128) << 64 | lo as u128;
            for modulus in [P25, P61, P251] {
                let mu = barrett_mu(modulus);
                prop_assert_eq!(reduce_barrett(input, modulus, mu), naive(input, modulus));
            }
        }

        #[test]
        fn prop_product_range_reduces_exactly(a in 0..P61, b in 0..P61) {
            // The hot-path shape: products of canonical representatives.
            let product = a as u128 * b as u128;
            prop_assert_eq!(reduce_mersenne61(product), naive(product, P61));
        }
    }
}
