//! Fixed-point quantization between real numbers and the finite field.
//!
//! The paper (§V, "Quantization and Parameter Selection") quantizes inputs and
//! model weights as `x_r = round(2^l · x)` and embeds the integers into `F_q`
//! using a two's-complement style representation: representatives larger than
//! `(q−1)/2` are negative. After the distributed computation, the master
//! subtracts `q` from large representatives and rescales by `2^{−l}`.
//!
//! The [`Quantizer`] tracks the precision `l` and performs the conversions;
//! [`SignedEmbedding`] captures only the sign convention (used when a value is
//! already an integer, like the GISETTE pixel counts). The module also exposes
//! the overflow analysis the paper uses to pick `q`: the worst-case inner
//! product of length `d` must satisfy `d (q−1)² ≤ 2^63 − 1` when accumulated in
//! a 64-bit register.

use crate::fp::{Fp, PrimeField, PrimeModulus};

/// Errors produced by quantization.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// The scaled magnitude does not fit in the signed range of the field.
    Overflow {
        /// The value that failed to quantize.
        value_repr: String,
        /// Number of precision bits in use.
        bits: u32,
        /// Largest representable magnitude at this precision.
        max_magnitude: f64,
    },
    /// The input was NaN or infinite.
    NotFinite,
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::Overflow {
                value_repr,
                bits,
                max_magnitude,
            } => write!(
                f,
                "value {value_repr} does not fit in the field at {bits} precision bits \
                 (max magnitude {max_magnitude})"
            ),
            QuantError::NotFinite => write!(f, "cannot quantize a NaN or infinite value"),
        }
    }
}

impl std::error::Error for QuantError {}

/// The sign convention used to embed integers in the field.
///
/// Representatives in `[0, (q−1)/2]` are non-negative; representatives in
/// `((q−1)/2, q)` represent the negative number `value − q`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SignedEmbedding;

impl SignedEmbedding {
    /// Embeds a signed integer into the field.
    pub fn encode<M: PrimeModulus>(self, value: i64) -> Fp<M> {
        Fp::<M>::from_i64(value)
    }

    /// Recovers the signed integer from a field element.
    pub fn decode<M: PrimeModulus>(self, element: Fp<M>) -> i64 {
        element.to_i64()
    }

    /// The largest magnitude representable without ambiguity: `(q−1)/2`.
    pub fn max_magnitude<M: PrimeModulus>(self) -> u64 {
        (M::MODULUS - 1) / 2
    }
}

/// Fixed-point quantizer with `l` fractional bits (the paper uses `l = 5` for
/// the model weights and `l = 0` for the non-negative GISETTE features).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    bits: u32,
}

impl Quantizer {
    /// Creates a quantizer with `bits` fractional precision bits.
    pub fn new(bits: u32) -> Self {
        Quantizer { bits }
    }

    /// The number of fractional precision bits `l`.
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The scale factor `2^l`.
    pub fn scale(self) -> f64 {
        (1u64 << self.bits) as f64
    }

    /// Quantizes a real number: `round(2^l x)` embedded with the signed
    /// convention. Fails if the value is not finite or its scaled magnitude
    /// exceeds `(q−1)/2`.
    pub fn quantize<M: PrimeModulus>(self, value: f64) -> Result<Fp<M>, QuantError> {
        if !value.is_finite() {
            return Err(QuantError::NotFinite);
        }
        let scaled = (value * self.scale()).round();
        let max_magnitude = ((M::MODULUS - 1) / 2) as f64;
        if scaled.abs() > max_magnitude {
            return Err(QuantError::Overflow {
                value_repr: format!("{value}"),
                bits: self.bits,
                max_magnitude: max_magnitude / self.scale(),
            });
        }
        Ok(Fp::<M>::from_i64(scaled as i64))
    }

    /// Quantizes a slice of reals. Fails on the first offending element.
    pub fn quantize_slice<M: PrimeModulus>(self, values: &[f64]) -> Result<Vec<Fp<M>>, QuantError> {
        values.iter().map(|&v| self.quantize(v)).collect()
    }

    /// Quantizes, saturating out-of-range magnitudes to the representable
    /// extreme instead of failing (used for the error vector `e`, whose
    /// entries are probabilities minus labels and therefore bounded, but kept
    /// total for robustness).
    pub fn quantize_saturating<M: PrimeModulus>(self, value: f64) -> Fp<M> {
        let max_magnitude = ((M::MODULUS - 1) / 2) as i64;
        if !value.is_finite() {
            return Fp::<M>::ZERO;
        }
        let scaled = (value * self.scale()).round();
        let clamped = scaled.clamp(-(max_magnitude as f64), max_magnitude as f64) as i64;
        Fp::<M>::from_i64(clamped)
    }

    /// Dequantizes a single field element produced by a computation whose
    /// total scale is `2^(total_bits)` — e.g. `X·w` where `X` used `l_x` bits
    /// and `w` used `l_w` bits has `total_bits = l_x + l_w`.
    pub fn dequantize_with_scale<M: PrimeModulus>(element: Fp<M>, total_bits: u32) -> f64 {
        element.to_i64() as f64 / (1u64 << total_bits) as f64
    }

    /// Dequantizes assuming this quantizer's own scale.
    pub fn dequantize<M: PrimeModulus>(self, element: Fp<M>) -> f64 {
        Self::dequantize_with_scale(element, self.bits)
    }

    /// Dequantizes a slice with an explicit total scale.
    pub fn dequantize_slice_with_scale<M: PrimeModulus>(
        elements: &[Fp<M>],
        total_bits: u32,
    ) -> Vec<f64> {
        elements
            .iter()
            .map(|&e| Self::dequantize_with_scale(e, total_bits))
            .collect()
    }
}

/// Checks the paper's field-size constraint: with feature dimension `d`, the
/// worst-case inner-product accumulation `d (q−1)²` must fit in a signed
/// 64-bit register (`≤ 2^63 − 1`).
pub fn worst_case_fits_u63<M: PrimeModulus>(dimension: u64) -> bool {
    let per_term = (M::MODULUS - 1) as u128 * (M::MODULUS - 1) as u128;
    dimension as u128 * per_term <= (i64::MAX as u128)
}

/// The largest dimension `d` for which the worst-case accumulation fits in a
/// signed 64-bit register for the field `M`.
pub fn max_safe_dimension<M: PrimeModulus>() -> u64 {
    let per_term = (M::MODULUS - 1) as u128 * (M::MODULUS - 1) as u128;
    (i64::MAX as u128 / per_term) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::{P25, P61};
    use proptest::prelude::*;

    type F = Fp<P25>;

    #[test]
    fn quantize_dequantize_round_trip_within_precision() {
        let q = Quantizer::new(5);
        for value in [-3.75, -0.5, 0.0, 0.03125, 1.0, 7.25] {
            let element: F = q.quantize(value).unwrap();
            let recovered = q.dequantize(element);
            assert!(
                (recovered - value).abs() <= 1.0 / 64.0,
                "{value} -> {recovered}"
            );
        }
    }

    #[test]
    fn quantize_rejects_nan_and_infinity() {
        let q = Quantizer::new(5);
        assert_eq!(q.quantize::<P25>(f64::NAN), Err(QuantError::NotFinite));
        assert_eq!(q.quantize::<P25>(f64::INFINITY), Err(QuantError::NotFinite));
    }

    #[test]
    fn quantize_rejects_overflow() {
        let q = Quantizer::new(5);
        let too_big = (P25::MODULUS as f64) * 10.0;
        assert!(matches!(
            q.quantize::<P25>(too_big),
            Err(QuantError::Overflow { .. })
        ));
    }

    #[test]
    fn saturating_quantize_clamps() {
        let q = Quantizer::new(5);
        let too_big = (P25::MODULUS as f64) * 10.0;
        let saturated: F = q.quantize_saturating(too_big);
        assert_eq!(saturated.to_i64(), ((P25::MODULUS - 1) / 2) as i64);
        let negative: F = q.quantize_saturating(-too_big);
        assert_eq!(negative.to_i64(), -(((P25::MODULUS - 1) / 2) as i64));
    }

    #[test]
    fn dequantize_with_combined_scale() {
        // x quantized at 0 bits, w at 5 bits: the product has scale 2^5.
        let x = F::from_i64(7);
        let w: F = Quantizer::new(5).quantize(0.5).unwrap();
        let product = x * w;
        let value = Quantizer::dequantize_with_scale(product, 5);
        assert!((value - 3.5).abs() < 1e-9);
    }

    #[test]
    fn signed_embedding_encodes_negatives_above_half() {
        let e = SignedEmbedding;
        let element: F = e.encode(-5);
        assert!(element.to_u64() > (P25::MODULUS - 1) / 2);
        assert_eq!(e.decode(element), -5);
    }

    #[test]
    fn paper_field_satisfies_gisette_constraint() {
        // The paper's justification for q = 2^25 - 39 with d = 5000.
        assert!(worst_case_fits_u63::<P25>(5000));
        assert!(max_safe_dimension::<P25>() >= 5000);
    }

    #[test]
    fn large_field_fails_u63_constraint() {
        assert!(!worst_case_fits_u63::<P61>(2));
    }

    #[test]
    fn quantizer_error_is_displayable() {
        let q = Quantizer::new(5);
        let err = q.quantize::<P25>(1e18).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    proptest! {
        #[test]
        fn prop_round_trip_error_bounded(value in -1000.0f64..1000.0f64, bits in 0u32..12) {
            let q = Quantizer::new(bits);
            let element: F = q.quantize(value).unwrap();
            let recovered = q.dequantize(element);
            // Rounding error is at most half an LSB.
            prop_assert!((recovered - value).abs() <= 0.5 / q.scale() + 1e-12);
        }

        #[test]
        fn prop_quantization_is_monotone(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let q = Quantizer::new(6);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let qa: F = q.quantize(lo).unwrap();
            let qb: F = q.quantize(hi).unwrap();
            prop_assert!(qa.to_i64() <= qb.to_i64());
        }
    }
}
