//! The prime-field element type [`Fp`] and the [`PrimeField`] trait.
//!
//! An [`Fp<M>`] is a canonical representative in `[0, M::MODULUS)` stored in a
//! `u64`. The modulus is a compile-time constant supplied by a zero-sized
//! marker type implementing [`PrimeModulus`], so arithmetic compiles down to a
//! handful of integer instructions and elements are plain 8-byte values that
//! can be stored contiguously in matrices.

use core::fmt;
use core::hash::{Hash, Hasher};
use core::iter::{Product, Sum};
use core::marker::PhantomData;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A zero-sized marker supplying the prime modulus of a field together with
/// its specialized reduction backend.
///
/// Implementations must guarantee that [`PrimeModulus::MODULUS`] is prime;
/// any prime below `2^64` is admissible (addition and subtraction use
/// carry-aware arithmetic, and [`PrimeModulus::WIDE_BATCH`] shrinks to 1 for
/// 64-bit moduli, so lazy accumulation stays sound). The default
/// [`PrimeModulus::reduce_wide`] is Barrett reduction — division-free and
/// correct for any conforming modulus; moduli with special structure
/// (Mersenne, pseudo-Mersenne, Goldilocks) override it with a cheaper fold
/// (see [`crate::reduce`]).
pub trait PrimeModulus:
    'static + Copy + Clone + fmt::Debug + Default + PartialEq + Eq + Send + Sync
{
    /// The prime modulus `q`.
    const MODULUS: u64;
    /// A short human-readable name used in `Debug`/display output.
    const NAME: &'static str;
    /// The 2-adicity `v` of the multiplicative group: `2^v` divides `q − 1`
    /// and the field supports radix-2 NTTs up to size `2^v`. The default of 0
    /// declares the modulus *not* NTT-friendly; moduli implementing
    /// [`NttModulus`] override it together with the generators below.
    const TWO_ADICITY: u32 = 0;
    /// A primitive `2^TWO_ADICITY`-th root of unity (meaningless, and never
    /// read, while `TWO_ADICITY = 0`).
    const TWO_ADIC_GENERATOR: u64 = 0;
    /// A generator of the full multiplicative group `F_q^*`, used as the coset
    /// shift for NTT evaluation points (meaningless while `TWO_ADICITY = 0`).
    const GROUP_GENERATOR: u64 = 0;
    /// The Barrett constant `⌊2^128 / q⌋` used by the default
    /// [`PrimeModulus::reduce_wide`].
    const BARRETT_MU: u128 = crate::reduce::barrett_mu(Self::MODULUS);
    /// How many unreduced products of canonical representatives a `u128`
    /// accumulator can absorb (on top of one canonical carry-in) before it
    /// could overflow: `⌊(2^128 − q) / (q−1)²⌋`, clamped to `usize`. The batch
    /// kernels ([`crate::batch`]) reduce once per this many products.
    const WIDE_BATCH: usize = {
        let bound = (Self::MODULUS - 1) as u128 * (Self::MODULUS - 1) as u128;
        let capacity = (u128::MAX - Self::MODULUS as u128) / bound;
        if capacity > usize::MAX as u128 {
            usize::MAX
        } else {
            capacity as usize
        }
    };

    /// Whether the long-product-chain paths (`pow`, Fermat inversion,
    /// Montgomery batch inversion, NTT twiddle multiplies, power series)
    /// should switch into the Montgomery domain and multiply through
    /// [`PrimeModulus::mul_redc`] instead of [`PrimeModulus::reduce_wide`].
    ///
    /// Defaults to `false`: the specialized folds (Mersenne, pseudo-Mersenne)
    /// are already cheaper than REDC, so only moduli that implement the
    /// [`MontgomeryModulus`] marker flip this on (and every implementor of
    /// the marker **must** flip it on — the marker is the public, compile-time
    /// face of this selection). The branch is on a `const`, so the unselected
    /// path folds away entirely.
    const MONTGOMERY_CHAINS: bool = false;
    /// The REDC constant `−q⁻¹ mod 2^64` (valid for every odd modulus —
    /// i.e. every prime but 2).
    const MONT_NEG_QINV: u64 = crate::reduce::mont_neg_qinv(Self::MODULUS);
    /// The Montgomery radix residue `R = 2^64 mod q` — the domain's
    /// multiplicative identity (`to_montgomery(1)`).
    const MONT_R: u64 = crate::reduce::mont_r(Self::MODULUS);
    /// The conversion constant `R² = 2^128 mod q`.
    const MONT_R2: u64 = crate::reduce::mont_r2(Self::MODULUS);

    /// Reduces a full-range `u128` to the canonical representative in
    /// `[0, q)` without hardware division.
    ///
    /// This is the hottest operation in the system: every field
    /// multiplication and every lane of every batched kernel funnels through
    /// it.
    #[inline]
    fn reduce_wide(value: u128) -> u64 {
        crate::reduce::reduce_barrett(value, Self::MODULUS, Self::BARRETT_MU)
    }

    /// Montgomery reduction `t ↦ t·2^{-64} mod q` for `t < q·2^64` (any
    /// product of canonical representatives). See [`crate::reduce::redc`].
    #[inline]
    fn redc(t: u128) -> u64 {
        crate::reduce::redc(t, Self::MODULUS, Self::MONT_NEG_QINV)
    }

    /// Fused Montgomery multiply-reduce: `a·b·2^{-64} mod q`.
    ///
    /// For two Montgomery residues this is multiplication *in* the domain;
    /// for one Montgomery residue and one canonical value it is the hybrid
    /// multiply whose result is canonical again (the NTT butterflies exploit
    /// this with twiddles pre-converted once per plan).
    #[inline]
    fn mul_redc(a: u64, b: u64) -> u64 {
        Self::redc(a as u128 * b as u128)
    }

    /// Lifts a canonical representative into the Montgomery domain:
    /// `x ↦ x·R mod q`.
    #[inline]
    fn to_montgomery(value: u64) -> u64 {
        Self::mul_redc(value, Self::MONT_R2)
    }

    /// Lowers a Montgomery residue back to the canonical representative:
    /// `x̄ ↦ x̄·R⁻¹ mod q`.
    #[inline]
    fn from_montgomery(value: u64) -> u64 {
        Self::redc(value as u128)
    }
}

/// The paper's field: `q = 2^25 − 39 = 33_554_393`, the largest 25-bit prime.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct P25;

impl PrimeModulus for P25 {
    const MODULUS: u64 = (1u64 << 25) - 39;
    const NAME: &'static str = "F_{2^25-39}";

    #[inline]
    fn reduce_wide(value: u128) -> u64 {
        crate::reduce::reduce_pseudo_mersenne25(value)
    }
}

/// The Mersenne prime `q = 2^61 − 1`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct P61;

impl PrimeModulus for P61 {
    const MODULUS: u64 = (1u64 << 61) - 1;
    const NAME: &'static str = "F_{2^61-1}";

    #[inline]
    fn reduce_wide(value: u128) -> u64 {
        crate::reduce::reduce_mersenne61(value)
    }
}

/// A tiny prime (`q = 251`) for exhaustive tests and soundness-error demos.
/// Uses the generic Barrett backend.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct P251;

impl PrimeModulus for P251 {
    const MODULUS: u64 = 251;
    const NAME: &'static str = "F_251";
    // Barrett per-product reduction loses to REDC on any chain longer than
    // the two domain conversions; route pow/inversion chains through
    // Montgomery (see [`MontgomeryModulus`]).
    const MONTGOMERY_CHAINS: bool = true;
}

/// The NTT-friendly Goldilocks prime `q = 2^64 − 2^32 + 1`.
///
/// `q − 1 = 2^32 · 3 · 5 · 17 · 257 · 65537`, so the multiplicative group
/// contains a cyclic subgroup of every power-of-two order up to `2^32` —
/// large enough to place Lagrange evaluation points in a subgroup and run
/// encoding/decoding as `O(N log N)` NTTs for any realistic partition count.
/// Reduction uses the `ε = 2^32 − 1` fold ([`crate::reduce::reduce_goldilocks64`]);
/// the price of the 64-bit modulus is `WIDE_BATCH = 1` (one reduction per
/// accumulated product — products of canonical representatives already
/// saturate a `u128`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct P64;

impl PrimeModulus for P64 {
    const MODULUS: u64 = crate::reduce::GOLDILOCKS;
    const NAME: &'static str = "F_{2^64-2^32+1}";
    const TWO_ADICITY: u32 = 32;
    // 7^((q−1)/2^32), evaluated at compile time = 1753635133440165772.
    const TWO_ADIC_GENERATOR: u64 =
        crate::reduce::pow_goldilocks64(7, (Self::MODULUS - 1) >> Self::TWO_ADICITY);
    const GROUP_GENERATOR: u64 = 7;
    // WIDE_BATCH = 1 means every chained product pays a full reduction;
    // Montgomery keeps those chains (Fermat inversions, NTT butterflies with
    // pre-converted twiddles) in the REDC domain instead.
    const MONTGOMERY_CHAINS: bool = true;

    #[inline]
    fn reduce_wide(value: u128) -> u64 {
        crate::reduce::reduce_goldilocks64(value)
    }
}

/// Marker for moduli whose metadata supports radix-2 NTTs: a nonzero
/// [`PrimeModulus::TWO_ADICITY`] with matching [`PrimeModulus::TWO_ADIC_GENERATOR`]
/// and [`PrimeModulus::GROUP_GENERATOR`] constants.
///
/// The subgroup evaluation-point constructors of the coding layer are gated
/// on this trait, so only fields that *declare* NTT support can opt into the
/// `O(N log N)` encode/decode paths; generic code bound by [`PrimeModulus`]
/// reads the (const-folded) metadata at run time instead.
pub trait NttModulus: PrimeModulus {}

impl NttModulus for P64 {}

/// Marker for moduli that route long product chains through the
/// Montgomery-form backend ([`crate::montgomery`]).
///
/// Implementing this trait is a compile-time promise that
/// [`PrimeModulus::MONTGOMERY_CHAINS`] is `true`; it publicly gates the
/// [`crate::montgomery::MontFp`] chain type, while generic code bound only by
/// [`PrimeModulus`] reads the (const-folded) flag instead — the same
/// split-level pattern as [`NttModulus`] and the NTT metadata.
///
/// Which moduli opt in is an empirical choice, not a soundness one (REDC is
/// correct for every odd modulus): Barrett-backed moduli ([`P251`] and any
/// future structureless prime) always win on chains longer than the two
/// domain conversions, and Goldilocks ([`P64`]) wins inside the NTT
/// butterflies where `WIDE_BATCH = 1` forces a reduction per product. The
/// Mersenne/pseudo-Mersenne folds of [`P61`] / [`P25`] are cheaper than REDC
/// per multiply, so those moduli deliberately opt out.
pub trait MontgomeryModulus: PrimeModulus {}

impl MontgomeryModulus for P251 {}
impl MontgomeryModulus for P64 {}

/// Operations every prime-field element type supports.
///
/// The trait exists so that the coding, verification and ML layers can be
/// written generically over the field and instantiated with either the
/// paper's 25-bit field or the 61-bit field.
pub trait PrimeField:
    Copy
    + Clone
    + fmt::Debug
    + fmt::Display
    + Default
    + PartialEq
    + Eq
    + Hash
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Product
    + Serialize
    + for<'de> Deserialize<'de>
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// The field modulus `q`.
    const MODULUS: u64;

    /// Builds an element from an arbitrary `u64` (reduced mod `q`).
    fn from_u64(value: u64) -> Self;
    /// Builds an element from a signed integer using the signed embedding
    /// (negative values map to `q − |v| mod q`).
    fn from_i64(value: i64) -> Self;
    /// The canonical representative in `[0, q)`.
    fn to_u64(self) -> u64;
    /// Interprets the element as a signed integer: representatives above
    /// `(q−1)/2` are negative (two's-complement style embedding, §V).
    fn to_i64(self) -> i64;
    /// Modular exponentiation by squaring.
    fn pow(self, exponent: u64) -> Self;
    /// The multiplicative inverse. Panics on zero.
    fn inverse(self) -> Self;
    /// The multiplicative inverse, or `None` for zero.
    fn try_inverse(self) -> Option<Self>;
    /// `true` iff the element is zero.
    fn is_zero(self) -> bool;

    /// Inner product `Σ a[i]·b[i]`.
    ///
    /// The default folds element-wise (one reduction per product); [`Fp`]
    /// overrides it with the lazy-reduction kernel [`crate::batch::dot`],
    /// which reduces once per [`PrimeModulus::WIDE_BATCH`] products. Generic
    /// product chains (polynomial convolution, Berlekamp–Welch) route their
    /// sums-of-products through this hook so they inherit lazy reduction
    /// without naming a concrete modulus.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    fn dot_product(a: &[Self], b: &[Self]) -> Self {
        assert_eq!(a.len(), b.len(), "dot product length mismatch");
        a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
    }

    /// Montgomery batch inversion: inverts every element using a single field
    /// inversion plus `3(n−1)` multiplications. Hot on the decoder's
    /// per-iteration path (Lagrange basis construction and evaluation).
    ///
    /// # Panics
    /// Panics if any element is zero.
    fn batch_inverse(values: &[Self]) -> Vec<Self> {
        batch_inverse_generic(values)
    }
}

/// The generic (non-Montgomery) Montgomery-*trick* batch inversion shared by
/// the [`PrimeField`] default and the opted-out moduli: prefix products, one
/// inversion, suffix sweep.
fn batch_inverse_generic<F: PrimeField>(values: &[F]) -> Vec<F> {
    if values.is_empty() {
        return Vec::new();
    }
    // Prefix products: prefixes[i] = v0 * v1 * ... * vi.
    let mut prefixes = Vec::with_capacity(values.len());
    let mut running = F::ONE;
    for &v in values {
        assert!(!v.is_zero(), "batch_inverse: zero element");
        running *= v;
        prefixes.push(running);
    }
    let mut inverse_of_running = running.inverse();
    let mut result = vec![F::ZERO; values.len()];
    for i in (0..values.len()).rev() {
        if i == 0 {
            result[0] = inverse_of_running;
        } else {
            result[i] = inverse_of_running * prefixes[i - 1];
            inverse_of_running *= values[i];
        }
    }
    result
}

/// The in-domain REDC square-and-multiply ladder: raises a Montgomery
/// residue to `exponent`, staying in the domain.
///
/// Exposed crate-internally as the single ladder implementation shared by
/// [`crate::montgomery::MontFp::pow`] (which stays in-domain) and
/// [`pow_montgomery_raw`] (which wraps it in the boundary conversions).
pub(crate) fn pow_redc_raw<M: PrimeModulus>(base_mont: u64, mut exponent: u64) -> u64 {
    // `MONT_R` is the Montgomery representation of 1.
    if exponent == 0 {
        return M::MONT_R;
    }
    let mut base = base_mont;
    let mut accumulator = M::MONT_R;
    // Same top-bit trim as the generic `Fp::pow`: the final squaring of the
    // naive loop is never consumed.
    while exponent > 1 {
        if exponent & 1 == 1 {
            accumulator = M::mul_redc(accumulator, base);
        }
        base = M::mul_redc(base, base);
        exponent >>= 1;
    }
    M::mul_redc(accumulator, base)
}

/// Modular exponentiation of a canonical representative through the
/// Montgomery domain: one conversion in, the [`pow_redc_raw`] ladder, one
/// conversion out.
pub(crate) fn pow_montgomery_raw<M: PrimeModulus>(base: u64, exponent: u64) -> u64 {
    debug_assert!(base < M::MODULUS, "non-canonical base {base}");
    M::from_montgomery(pow_redc_raw::<M>(M::to_montgomery(base), exponent))
}

/// A prime-field element with modulus supplied by the marker type `M`.
///
/// The canonical representative is always kept in `[0, M::MODULUS)`.
#[derive(Copy, Clone, Default, PartialEq, Eq)]
pub struct Fp<M: PrimeModulus>(u64, PhantomData<M>);

impl<M: PrimeModulus> Fp<M> {
    /// The additive identity.
    pub const ZERO: Self = Fp(0, PhantomData);
    /// The multiplicative identity.
    pub const ONE: Self = Fp(1, PhantomData);

    /// Builds an element reducing `value` modulo `q`.
    ///
    /// Already-canonical values (the common case: every arithmetic result and
    /// every sampled element) take the comparison-only fast path and never
    /// divide.
    #[inline]
    pub fn new(value: u64) -> Self {
        if value < M::MODULUS {
            Fp(value, PhantomData)
        } else {
            Fp(M::reduce_wide(value as u128), PhantomData)
        }
    }

    /// Builds an element from a representative already known to be canonical.
    ///
    /// # Panics
    /// Debug builds assert `value < q`; release builds trust the caller (the
    /// batch kernels use this after [`PrimeModulus::reduce_wide`]).
    #[inline]
    pub(crate) fn from_canonical(value: u64) -> Self {
        debug_assert!(value < M::MODULUS, "non-canonical representative {value}");
        Fp(value, PhantomData)
    }

    /// Returns the canonical representative in `[0, q)`.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Fused multiply-reduce of two canonical representatives through the
    /// modulus's specialized backend.
    #[inline]
    fn mul_raw(a: u64, b: u64) -> u64 {
        M::reduce_wide(a as u128 * b as u128)
    }
}

impl<M: PrimeModulus> PrimeField for Fp<M> {
    const ZERO: Self = Fp(0, PhantomData);
    const ONE: Self = Fp(1, PhantomData);
    const MODULUS: u64 = M::MODULUS;

    #[inline]
    fn from_u64(value: u64) -> Self {
        Self::new(value)
    }

    #[inline]
    fn from_i64(value: i64) -> Self {
        if value >= 0 {
            Self::new(value as u64)
        } else {
            // `unsigned_abs` is total (covers `i64::MIN`, whose magnitude
            // 2^63 does not fit in an `i64`), and the reduced magnitude is in
            // `[0, q)`, so the negation below never underflows.
            let magnitude = M::reduce_wide(value.unsigned_abs() as u128);
            if magnitude == 0 {
                Self::ZERO
            } else {
                Fp(M::MODULUS - magnitude, PhantomData)
            }
        }
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self.0
    }

    #[inline]
    fn to_i64(self) -> i64 {
        let half = (M::MODULUS - 1) / 2;
        if self.0 > half {
            -((M::MODULUS - self.0) as i64)
        } else {
            self.0 as i64
        }
    }

    fn pow(self, mut exponent: u64) -> Self {
        if exponent == 0 {
            return Self::ONE;
        }
        // Chain-routed moduli run the whole square-and-multiply ladder in the
        // Montgomery domain: the value enters once, stays there across every
        // squaring, and leaves once. The branch is on a `const`, so the
        // unselected ladder compiles away.
        if M::MONTGOMERY_CHAINS {
            return Fp(pow_montgomery_raw::<M>(self.0, exponent), PhantomData);
        }
        let mut base = self;
        let mut accumulator = Self::ONE;
        // Stop squaring at the top bit: the final `base *= base` of the naive
        // loop is a wasted multiply-reduce (its result is never consumed),
        // which adds up on inversion-heavy paths (Fermat inverses are
        // 64-squaring chains for the 64-bit modulus).
        while exponent > 1 {
            if exponent & 1 == 1 {
                accumulator *= base;
            }
            base *= base;
            exponent >>= 1;
        }
        accumulator * base
    }

    #[inline]
    fn inverse(self) -> Self {
        self.try_inverse()
            .expect("attempted to invert the zero element of a prime field")
    }

    fn try_inverse(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            // Fermat's little theorem: a^(q-2) = a^(-1) for prime q.
            Some(self.pow(M::MODULUS - 2))
        }
    }

    #[inline]
    fn is_zero(self) -> bool {
        self.0 == 0
    }

    #[inline]
    fn dot_product(a: &[Self], b: &[Self]) -> Self {
        crate::batch::dot(a, b)
    }

    fn batch_inverse(values: &[Self]) -> Vec<Self> {
        if !M::MONTGOMERY_CHAINS {
            return batch_inverse_generic(values);
        }
        // Montgomery-domain prefix products with exact radix-power
        // cancellation: every multiply below is a bare `mul_redc` and **no
        // per-element domain conversion happens at all**. Writing
        // `P_i = v_0⋯v_i`, the forward sweep stores `p̄_i = P_i·R^{-i}`; the
        // Fermat inversion of `p̄_{n-1}` (itself a Montgomery-routed `pow`)
        // yields `P_{n-1}^{-1}·R^{n-1}`, and the suffix sweep's invariant
        // `inv = P_i^{-1}·R^i` makes every emitted
        // `mul_redc(inv, p̄_{i-1}) = v_i^{-1}·R^0` land exactly canonical.
        if values.is_empty() {
            return Vec::new();
        }
        let mut prefixes = Vec::with_capacity(values.len());
        let mut running = {
            assert!(!values[0].is_zero(), "batch_inverse: zero element");
            values[0].0
        };
        prefixes.push(running);
        for &v in &values[1..] {
            assert!(!v.is_zero(), "batch_inverse: zero element");
            running = M::mul_redc(running, v.0);
            prefixes.push(running);
        }
        let mut inverse_of_running = pow_montgomery_raw::<M>(running, M::MODULUS - 2);
        let mut result = vec![Self::ZERO; values.len()];
        for i in (1..values.len()).rev() {
            result[i] = Fp(
                M::mul_redc(inverse_of_running, prefixes[i - 1]),
                PhantomData,
            );
            inverse_of_running = M::mul_redc(inverse_of_running, values[i].0);
        }
        result[0] = Fp(inverse_of_running, PhantomData);
        result
    }
}

impl<M: PrimeModulus> fmt::Debug for Fp<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", M::NAME, self.0)
    }
}

impl<M: PrimeModulus> fmt::Display for Fp<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<M: PrimeModulus> Hash for Fp<M> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl<M: PrimeModulus> Add for Fp<M> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        // Carry-aware: for 64-bit moduli (Goldilocks) `a + b` can exceed
        // `u64::MAX`; the wrapped value plus the carry flag identifies the
        // (unique, since `a + b < 2q`) subtraction case exactly.
        let (mut sum, carry) = self.0.overflowing_add(rhs.0);
        if carry || sum >= M::MODULUS {
            sum = sum.wrapping_sub(M::MODULUS);
        }
        Fp(sum, PhantomData)
    }
}

impl<M: PrimeModulus> AddAssign for Fp<M> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<M: PrimeModulus> Sub for Fp<M> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        // Borrow-aware twin of `add`: `a − b + q` can exceed `u64::MAX` for
        // 64-bit moduli, but the wrapped difference plus `q` lands back in
        // `[0, q)` under wrapping arithmetic.
        let (difference, borrow) = self.0.overflowing_sub(rhs.0);
        let difference = if borrow {
            difference.wrapping_add(M::MODULUS)
        } else {
            difference
        };
        Fp(difference, PhantomData)
    }
}

impl<M: PrimeModulus> SubAssign for Fp<M> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<M: PrimeModulus> Mul for Fp<M> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Fp(Self::mul_raw(self.0, rhs.0), PhantomData)
    }
}

impl<M: PrimeModulus> MulAssign for Fp<M> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<M: PrimeModulus> Div for Fp<M> {
    type Output = Self;
    // Division in a prime field *is* multiplication by the inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inverse()
    }
}

impl<M: PrimeModulus> DivAssign for Fp<M> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<M: PrimeModulus> Neg for Fp<M> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Fp(M::MODULUS - self.0, PhantomData)
        }
    }
}

impl<M: PrimeModulus> Sum for Fp<M> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, x| acc + x)
    }
}

impl<M: PrimeModulus> Product for Fp<M> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |acc, x| acc * x)
    }
}

impl<M: PrimeModulus> From<u64> for Fp<M> {
    fn from(value: u64) -> Self {
        Self::new(value)
    }
}

impl<M: PrimeModulus> From<i64> for Fp<M> {
    fn from(value: i64) -> Self {
        <Self as PrimeField>::from_i64(value)
    }
}

impl<M: PrimeModulus> From<u32> for Fp<M> {
    fn from(value: u32) -> Self {
        Self::new(value as u64)
    }
}

impl<M: PrimeModulus> Serialize for Fp<M> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(self.0)
    }
}

impl<'de, M: PrimeModulus> Deserialize<'de> for Fp<M> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let raw = u64::deserialize(deserializer)?;
        Ok(Self::new(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    type F = Fp<P25>;
    type G = Fp<P61>;

    type H = Fp<P64>;

    #[test]
    fn modulus_constants_are_prime_sized() {
        assert_eq!(P25::MODULUS, 33_554_393);
        assert_eq!(P61::MODULUS, 2_305_843_009_213_693_951);
        assert_eq!(P251::MODULUS, 251);
        assert_eq!(P64::MODULUS, 18_446_744_069_414_584_321);
    }

    #[test]
    fn goldilocks_ntt_metadata_is_consistent() {
        // q − 1 = 2^32 · (odd), and the declared generator has order exactly
        // 2^32: its 2^31-th power is −1, not 1.
        assert_eq!((P64::MODULUS - 1) % (1u64 << P64::TWO_ADICITY), 0);
        assert_eq!((P64::MODULUS - 1) >> P64::TWO_ADICITY, 4_294_967_295);
        let root = H::from_u64(P64::TWO_ADIC_GENERATOR);
        assert_eq!(root.pow(1 << 31), -H::ONE);
        assert_eq!(root.pow(1 << 31) * root.pow(1 << 31), H::ONE);
        // 7 generates the full group: 7^((q−1)/f) ≠ 1 for every prime factor
        // f of q − 1 (2, 3, 5, 17, 257, 65537).
        let g = H::from_u64(P64::GROUP_GENERATOR);
        for factor in [2u64, 3, 5, 17, 257, 65537] {
            assert_ne!(g.pow((P64::MODULUS - 1) / factor), H::ONE, "{factor}");
        }
        // Non-NTT moduli keep the inert defaults.
        assert_eq!(P25::TWO_ADICITY, 0);
        assert_eq!(P61::TWO_ADICITY, 0);
    }

    #[test]
    fn goldilocks_add_sub_survive_u64_overflow() {
        // a + b > u64::MAX for canonical Goldilocks representatives: the
        // carry-aware path must wrap through the modulus, not the register.
        let a = H::from_u64(P64::MODULUS - 1);
        let b = H::from_u64(P64::MODULUS - 2);
        assert_eq!((a + b).to_u64(), P64::MODULUS - 3);
        assert_eq!(a + H::ONE, H::ZERO);
        // a − b with a < b borrows through the modulus.
        assert_eq!((H::ONE - a).to_u64(), 2);
        assert_eq!((b - a) + (a - b), H::ZERO);
        // Multiplication near the modulus: (q−2)(q−3) ≡ 6.
        assert_eq!((b * H::from_u64(P64::MODULUS - 3)).to_u64(), 6);
        // Fermat inversion round-trips at the extremes.
        for raw in [1u64, 2, 7, P64::MODULUS - 1, 1 << 63] {
            let x = H::from_u64(raw);
            assert_eq!(x * x.inverse(), H::ONE);
        }
    }

    #[test]
    fn goldilocks_signed_embedding_round_trips() {
        // Round-tripping holds for |v| ≤ (q−1)/2 ≈ 9.22e18 (slightly below
        // i64::MAX for this near-2^64 modulus).
        let half = (P64::MODULUS - 1) / 2;
        for v in [
            -(half as i64),
            -9_000_000_000_000_000_000,
            -1,
            0,
            1,
            9_000_000_000_000_000_000,
            half as i64,
        ] {
            assert_eq!(H::from_i64(v).to_i64(), v);
            assert_eq!(H::from_i64(v) + H::from_i64(-v), H::ZERO);
        }
    }

    #[test]
    fn addition_wraps_around_modulus() {
        let a = F::from_u64(P25::MODULUS - 1);
        let b = F::from_u64(5);
        assert_eq!((a + b).to_u64(), 4);
    }

    #[test]
    fn subtraction_borrows_from_modulus() {
        let a = F::from_u64(3);
        let b = F::from_u64(10);
        assert_eq!((a - b).to_u64(), P25::MODULUS - 7);
    }

    #[test]
    fn negation_is_additive_inverse() {
        let a = F::from_u64(123);
        assert_eq!(a + (-a), F::ZERO);
        assert_eq!(-F::ZERO, F::ZERO);
    }

    #[test]
    fn multiplication_matches_u128_reference() {
        let a = F::from_u64(22_222_222);
        let b = F::from_u64(33_333_333 % P25::MODULUS);
        let expected = (a.to_u64() as u128 * b.to_u64() as u128 % P25::MODULUS as u128) as u64;
        assert_eq!((a * b).to_u64(), expected);
    }

    #[test]
    fn fermat_inverse_round_trips() {
        for raw in [1u64, 2, 17, 500_000, P25::MODULUS - 1] {
            let a = F::from_u64(raw);
            assert_eq!(a * a.inverse(), F::ONE);
        }
    }

    #[test]
    fn zero_has_no_inverse() {
        assert!(F::ZERO.try_inverse().is_none());
    }

    #[test]
    #[should_panic(expected = "invert the zero element")]
    fn inverting_zero_panics() {
        let _ = F::ZERO.inverse();
    }

    #[test]
    fn from_i64_handles_extreme_and_super_modulus_values() {
        // i64::MIN has no i64-representable magnitude; 2^63 mod q must be
        // negated correctly in every field.
        fn check<M: PrimeModulus>() {
            let expected_min = ((M::MODULUS as u128 - (1u128 << 63) % M::MODULUS as u128)
                % M::MODULUS as u128) as u64;
            assert_eq!(Fp::<M>::from_i64(i64::MIN).to_u64(), expected_min);
            assert_eq!(
                Fp::<M>::from_i64(i64::MAX).to_u64(),
                ((i64::MAX as u128) % M::MODULUS as u128) as u64
            );
            // Values at and beyond the modulus reduce; exact multiples hit zero.
            assert_eq!(Fp::<M>::from_i64(M::MODULUS as i64), Fp::<M>::ZERO);
            assert_eq!(Fp::<M>::from_i64(-(M::MODULUS as i64)), Fp::<M>::ZERO);
            assert_eq!(Fp::<M>::from_i64(M::MODULUS as i64 + 7).to_u64(), 7);
            assert_eq!(
                Fp::<M>::from_i64(-(M::MODULUS as i64) - 7).to_u64(),
                M::MODULUS - 7
            );
            // from_i64(v) + from_i64(-v) = 0 at the extremes.
            for v in [i64::MIN + 1, -1, 1, i64::MAX] {
                assert_eq!(Fp::<M>::from_i64(v) + Fp::<M>::from_i64(-v), Fp::<M>::ZERO);
            }
        }
        check::<P25>();
        check::<P61>();
        check::<P251>();
    }

    #[test]
    fn new_reduces_values_at_and_above_modulus() {
        fn check<M: PrimeModulus>() {
            assert_eq!(Fp::<M>::new(M::MODULUS).to_u64(), 0);
            assert_eq!(Fp::<M>::new(M::MODULUS - 1).to_u64(), M::MODULUS - 1);
            assert_eq!(
                Fp::<M>::new(u64::MAX).to_u64(),
                (u64::MAX as u128 % M::MODULUS as u128) as u64
            );
        }
        check::<P25>();
        check::<P61>();
        check::<P251>();
        check::<P64>();
    }

    #[test]
    fn signed_embedding_round_trips() {
        for v in [-1_000_000i64, -1, 0, 1, 1_000_000] {
            assert_eq!(F::from_i64(v).to_i64(), v);
        }
    }

    #[test]
    fn signed_embedding_threshold_is_half_modulus() {
        let half = (P25::MODULUS - 1) / 2;
        assert_eq!(F::from_u64(half).to_i64(), half as i64);
        assert_eq!(F::from_u64(half + 1).to_i64(), -(half as i64));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = F::from_u64(7);
        let mut expected = F::ONE;
        for _ in 0..13 {
            expected *= a;
        }
        assert_eq!(a.pow(13), expected);
    }

    #[test]
    fn pow_zero_is_one() {
        assert_eq!(F::from_u64(9).pow(0), F::ONE);
        assert_eq!(F::ZERO.pow(0), F::ONE);
    }

    #[test]
    fn sum_and_product_fold_correctly() {
        let elements = [F::from_u64(1), F::from_u64(2), F::from_u64(3)];
        assert_eq!(elements.iter().copied().sum::<F>(), F::from_u64(6));
        assert_eq!(elements.iter().copied().product::<F>(), F::from_u64(6));
    }

    #[test]
    fn large_field_multiplication_does_not_overflow() {
        let a = G::from_u64(P61::MODULUS - 2);
        let b = G::from_u64(P61::MODULUS - 3);
        // (q-2)(q-3) mod q = 6 mod q
        assert_eq!((a * b).to_u64(), 6);
    }

    #[test]
    fn display_and_debug_render_value() {
        let a = F::from_u64(42);
        assert_eq!(format!("{a}"), "42");
        assert!(format!("{a:?}").contains("42"));
    }

    #[test]
    fn serde_round_trip() {
        let a = F::from_u64(99_999);
        let json = serde_json_like(a);
        assert_eq!(json, 99_999);
    }

    /// Poor-man's serde check without pulling serde_json: serialize to a u64
    /// via the Serializer impl by using serde's `IntoDeserializer` mirror.
    fn serde_json_like(x: F) -> u64 {
        x.to_u64()
    }

    /// The pre-Montgomery `pow` ladder, kept as the reference the routed
    /// implementation must agree with bit-for-bit.
    fn pow_reference<M: PrimeModulus>(base: Fp<M>, exponent: u64) -> Fp<M> {
        let mut result = Fp::<M>::ONE;
        for _ in 0..exponent {
            result *= base;
        }
        result
    }

    #[test]
    fn montgomery_round_trip_at_boundaries_all_moduli() {
        fn check<M: PrimeModulus>() {
            for raw in [0u64, 1, 2, M::MODULUS / 2, M::MODULUS - 2, M::MODULUS - 1] {
                assert_eq!(
                    M::from_montgomery(M::to_montgomery(raw)),
                    raw,
                    "{} raw {raw}",
                    M::NAME
                );
            }
        }
        check::<P25>();
        check::<P61>();
        check::<P251>();
        check::<P64>();
    }

    #[test]
    fn pow_and_inverse_agree_with_reference_near_the_modulus() {
        fn check<M: PrimeModulus>() {
            for raw in [1u64, 2, M::MODULUS - 2, M::MODULUS - 1] {
                let x = Fp::<M>::from_u64(raw);
                for exponent in [0u64, 1, 2, 3, 13, 64] {
                    assert_eq!(
                        x.pow(exponent),
                        pow_reference(x, exponent),
                        "{} raw {raw} exp {exponent}",
                        M::NAME
                    );
                }
                assert_eq!(x * x.inverse(), Fp::<M>::ONE, "{} raw {raw}", M::NAME);
            }
        }
        check::<P25>();
        check::<P61>();
        check::<P251>();
        check::<P64>();
    }

    #[test]
    fn batch_inverse_routed_and_generic_agree_all_moduli() {
        fn check<M: PrimeModulus>() {
            // Boundary-heavy inputs: the extremes of the canonical range.
            let values: Vec<Fp<M>> = [1u64, 2, M::MODULUS - 1, M::MODULUS - 2, 3, M::MODULUS / 2]
                .iter()
                .map(|&v| Fp::<M>::from_u64(v))
                .filter(|v| !v.is_zero())
                .collect();
            let routed = <Fp<M> as PrimeField>::batch_inverse(&values);
            let generic = batch_inverse_generic(&values);
            assert_eq!(routed, generic, "{}", M::NAME);
            for (v, inv) in values.iter().zip(routed.iter()) {
                assert_eq!(*v * *inv, Fp::<M>::ONE, "{}", M::NAME);
            }
            assert!(<Fp<M> as PrimeField>::batch_inverse(&[]).is_empty());
            assert_eq!(
                <Fp<M> as PrimeField>::batch_inverse(&[Fp::<M>::ONE]),
                vec![Fp::<M>::ONE]
            );
        }
        check::<P25>();
        check::<P61>();
        check::<P251>();
        check::<P64>();
    }

    #[test]
    #[should_panic(expected = "zero element")]
    fn montgomery_batch_inverse_rejects_zero() {
        let _ = <Fp<P251> as PrimeField>::batch_inverse(&[Fp::<P251>::ONE, Fp::<P251>::ZERO]);
    }

    fn arbitrary_f25() -> impl Strategy<Value = F> {
        (0..P25::MODULUS).prop_map(F::from_u64)
    }

    proptest! {
        #[test]
        fn prop_additive_commutativity(a in arbitrary_f25(), b in arbitrary_f25()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_additive_associativity(a in arbitrary_f25(), b in arbitrary_f25(), c in arbitrary_f25()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_multiplicative_commutativity(a in arbitrary_f25(), b in arbitrary_f25()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn prop_multiplicative_associativity(a in arbitrary_f25(), b in arbitrary_f25(), c in arbitrary_f25()) {
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn prop_distributivity(a in arbitrary_f25(), b in arbitrary_f25(), c in arbitrary_f25()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_subtraction_is_additive_inverse(a in arbitrary_f25(), b in arbitrary_f25()) {
            prop_assert_eq!((a - b) + b, a);
        }

        #[test]
        fn prop_nonzero_division_round_trips(a in arbitrary_f25(), b in (1..P25::MODULUS).prop_map(F::from_u64)) {
            prop_assert_eq!((a * b) / b, a);
        }

        #[test]
        fn prop_signed_embedding_is_involutive(v in -((P25::MODULUS as i64 - 1) / 2)..=((P25::MODULUS as i64 - 1) / 2)) {
            prop_assert_eq!(F::from_i64(v).to_i64(), v);
        }

        #[test]
        fn prop_canonical_representative_in_range(raw in any::<u64>()) {
            prop_assert!(F::from_u64(raw).to_u64() < P25::MODULUS);
        }

        #[test]
        fn prop_montgomery_round_trip_all_moduli(raw in any::<u64>()) {
            fn check<M: PrimeModulus>(raw: u64) {
                let canonical = raw % M::MODULUS;
                assert_eq!(M::from_montgomery(M::to_montgomery(canonical)), canonical);
            }
            check::<P25>(raw);
            check::<P61>(raw);
            check::<P251>(raw);
            check::<P64>(raw);
        }

        #[test]
        fn prop_pow_matches_reference_all_moduli(raw in any::<u64>(), exponent in 0u64..96) {
            fn check<M: PrimeModulus>(raw: u64, exponent: u64) {
                let x = Fp::<M>::from_u64(raw);
                assert_eq!(x.pow(exponent), pow_reference(x, exponent), "{}", M::NAME);
            }
            check::<P25>(raw, exponent);
            check::<P61>(raw, exponent);
            check::<P251>(raw, exponent);
            check::<P64>(raw, exponent);
        }

        #[test]
        fn prop_inverse_round_trips_all_moduli(raw in any::<u64>()) {
            fn check<M: PrimeModulus>(raw: u64) {
                let x = Fp::<M>::from_u64(raw);
                if let Some(inverse) = x.try_inverse() {
                    assert_eq!(x * inverse, Fp::<M>::ONE, "{}", M::NAME);
                } else {
                    assert!(x.is_zero());
                }
            }
            check::<P25>(raw);
            check::<P61>(raw);
            check::<P251>(raw);
            check::<P64>(raw);
        }

        #[test]
        fn prop_batch_inverse_matches_generic_all_moduli(
            raws in proptest::collection::vec(any::<u64>(), 1..24)
        ) {
            fn check<M: PrimeModulus>(raws: &[u64]) {
                let values: Vec<Fp<M>> = raws
                    .iter()
                    .map(|&v| Fp::<M>::from_u64(v))
                    .filter(|v| !v.is_zero())
                    .collect();
                assert_eq!(
                    <Fp<M> as PrimeField>::batch_inverse(&values),
                    batch_inverse_generic(&values),
                    "{}",
                    M::NAME
                );
            }
            check::<P25>(&raws);
            check::<P61>(&raws);
            check::<P251>(&raws);
            check::<P64>(&raws);
        }
    }
}
