//! Prime-field arithmetic, signed embedding and fixed-point quantization.
//!
//! This crate is the lowest-level substrate of the AVCC reproduction. Every
//! other crate (coding, verification, the ML workload, the cluster simulator)
//! operates on elements of a prime field `F_q`, exactly as the paper does:
//! the dataset and the model weights are quantized to integers, embedded into
//! `F_q` and all distributed computation happens over the field so that
//! Lagrange/MDS coding and Freivalds verification are information-theoretically
//! sound.
//!
//! # Contents
//!
//! * [`Fp`] — a `u64`-backed prime-field element, generic over a
//!   [`PrimeModulus`] marker type. The paper's field `q = 2^25 − 39` is
//!   available as [`F25`]; a larger Mersenne field `q = 2^61 − 1` is available
//!   as [`F61`] for workloads that need more headroom, and a tiny field
//!   [`F251`] is provided for exhaustive tests.
//! * [`reduce`] — the specialized wide-reduction backends behind every
//!   multiply (see *Reduction strategy* below).
//! * [`montgomery`] — the Montgomery-form chain backend: [`MontFp`] holds a
//!   residue `x·R mod q` so long product chains (`pow`, Fermat inversions,
//!   batch-inversion sweeps, NTT twiddle products) multiply via the
//!   three-multiply REDC step instead of paying a full reduction per
//!   product. Selection is compile-time via the [`MontgomeryModulus`]
//!   marker / [`PrimeModulus::MONTGOMERY_CHAINS`] flag.
//! * [`batch`] — slice-level kernels: element-wise operations, dot products
//!   with lazy reduction, the [`WideAccumulator`] engine of the encoder and
//!   decoder, Montgomery batch inversion.
//! * [`quantize`] — fixed-point quantization between `f64` and `F_q` using the
//!   two's-complement style signed embedding described in §V of the paper
//!   (values above `(q−1)/2` represent negative numbers), together with
//!   overflow analysis helpers implementing the paper's
//!   `d·(q−1)² ≤ 2^63 − 1` constraint.
//! * [`rng`] — sampling of uniformly random field elements, vectors and
//!   matrices (used for Lagrange privacy padding and Freivalds keys).
//!
//! # Reduction strategy
//!
//! Every *one-shot* multiply funnels through [`PrimeModulus::reduce_wide`],
//! which maps a full-range `u128` to the canonical representative without
//! hardware division:
//!
//! | Modulus | Backend | Cost per reduction |
//! |---------|---------|--------------------|
//! | `2^61 − 1` ([`P61`]) | Mersenne fold (`2^61 ≡ 1`) | 3 shift-add folds + 1 conditional subtract |
//! | `2^25 − 39` ([`P25`]) | pseudo-Mersenne fold (`2^25 ≡ 39`) | 3 folds + 1 conditional subtract for inputs `< 2^64` (any product of canonical values); a loop sheds ≈19.7 bits/fold above that |
//! | `2^64 − 2^32 + 1` ([`P64`], Goldilocks) | `ε = 2^32 − 1` fold (`2^64 ≡ ε`, `2^96 ≡ −1`) | 1 borrow-corrected subtract + 1 32×32 multiply + 1 carry-corrected add + 1 conditional subtract; `WIDE_BATCH = 1`, so every product reduces — the field's payoff is the `2^32` two-adicity that unlocks the NTT encode/decode paths |
//! | `251` ([`P251`]) and any other | Barrett with `μ = ⌊2^128/q⌋` | 1 high-128 multiply + ≤ 2 conditional subtracts |
//!
//! # Backend selection per workload shape
//!
//! *Chains* — sequences of dependent multiplies (`pow` ladders, Fermat
//! inversions, batch-inversion sweeps, NTT twiddle products, power series) —
//! additionally choose between the canonical backend above and the
//! Montgomery domain ([`montgomery`]), selected at compile time by the
//! [`MontgomeryModulus`] marker / [`PrimeModulus::MONTGOMERY_CHAINS`] flag:
//!
//! | Modulus | One-shot products / lazy sums | Long chains | Why |
//! |---------|-------------------------------|-------------|-----|
//! | [`P25`] | pseudo-Mersenne fold | fold (opted out) | the 3-fold reduction is cheaper than the 3-multiply REDC step, and `WIDE_BATCH ≈ 2^78` makes lazy accumulation nearly free |
//! | [`P61`] | Mersenne fold | fold (opted out) | same: shift-add folds beat REDC per multiply |
//! | [`P64`] | Goldilocks ε-fold | **Montgomery** | `WIDE_BATCH = 1` forces a reduction per chained product; REDC keeps Fermat's 64-squaring ladder and the NTT butterflies (twiddles pre-converted once per plan) in-domain |
//! | [`P251`] (and any structureless prime) | Barrett | **Montgomery** | Barrett's 128×128 high multiply per product loses to REDC on any chain longer than the two domain conversions — gated in CI at chain length ≥ 64 |
//!
//! Opting in is an empirical decision, not a soundness one: REDC is correct
//! for every odd modulus, and the CI bench gate
//! (`scripts/bench_regression.py`) enforces that the Montgomery path
//! actually wins where it is enabled.
//!
//! # Overflow bounds (lazy reduction)
//!
//! The batch and linalg kernels do not reduce per product. A `u128` lane
//! holding one canonical carry-in (`< q`) absorbs up to
//! [`PrimeModulus::WIDE_BATCH`]` = ⌊(2^128 − q) / (q−1)²⌋` unreduced products
//! before it could overflow:
//!
//! * `q = 2^25 − 39`: products are `< 2^50`, so the batch is `≈ 2^78` — one
//!   reduction per lane for any realistic vector length;
//! * `q = 2^61 − 1`: products are `< 2^122`, so the batch is 63 — one
//!   reduction per 63 products.
//!
//! Every kernel checks the bound at **compile time** via an inline-`const`
//! evaluation of [`batch::assert_wide_batch`], so an unsound modulus is a
//! build error, not a run-time overflow. This replaces the paper's
//! 64-bit-accumulator constraint `d·(q−1)² ≤ 2^63 − 1` (§V) with a 128-bit
//! budget that admits the GISETTE dimension `d = 5000` in both fields with
//! a single reduction per lane (`F25`) or 79 reductions (`F61`).
//!
//! # Example
//!
//! ```
//! use avcc_field::{F25, PrimeField};
//!
//! let a = F25::from_u64(123_456);
//! let b = F25::from_u64(789);
//! assert_eq!((a * b) / b, a);
//! assert_eq!(a - a, F25::ZERO);
//! assert_eq!(a.pow(F25::MODULUS - 1), F25::ONE); // Fermat's little theorem
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod fp;
pub mod montgomery;
pub mod quantize;
pub mod reduce;
pub mod rng;

pub use batch::{
    batch_inverse, dot, slice_add, slice_add_assign, slice_axpy, slice_scale, slice_sub,
    WideAccumulator, DOT_LANES,
};
pub use fp::{Fp, MontgomeryModulus, NttModulus, PrimeField, PrimeModulus, P25, P251, P61, P64};
pub use montgomery::{from_montgomery_vec, power_series, to_montgomery_vec, MontFp};
pub use quantize::{QuantError, Quantizer, SignedEmbedding};
pub use rng::{random_element, random_matrix, random_vector};

/// The field used throughout the paper: `q = 2^25 − 39`, the largest 25-bit
/// prime. With the GISETTE-like feature dimension `d = 5000` the worst-case
/// inner product satisfies `d (q−1)^2 ≤ 2^63 − 1`, so accumulation fits in a
/// 64-bit register (we still accumulate in `u128` for safety at larger `d`).
pub type F25 = Fp<P25>;

/// A larger field, `q = 2^61 − 1` (a Mersenne prime), for workloads whose
/// quantized dynamic range does not fit in the 25-bit field.
pub type F61 = Fp<P61>;

/// The NTT-friendly Goldilocks field, `q = 2^64 − 2^32 + 1`, whose `2^32`
/// two-adicity lets the coding layer place evaluation points in a
/// multiplicative subgroup and encode/decode in `O(N log N)` per coordinate.
pub type F64 = Fp<P64>;

/// A tiny field (`q = 251`) used by exhaustive unit tests and to demonstrate
/// the `1/q` soundness error of Freivalds verification empirically.
pub type F251 = Fp<P251>;
