//! The Montgomery-form chain type [`MontFp`] for long product chains.
//!
//! Every multiply of a canonical [`Fp`] pays one full reduction through the
//! modulus backend. On a *chain* — Fermat inversions, `pow` ladders, the
//! prefix/suffix sweeps of batch inversion, NTT twiddle products — that
//! per-product reduction dominates, and for moduli without a cheap fold
//! (Barrett-backed primes like `F_251`) or with a degenerate lazy budget
//! (Goldilocks, `WIDE_BATCH = 1`) the classic fix is Montgomery form: lift
//! the value to `x̄ = x·R mod q` (with `R = 2^64`) **once**, multiply inside
//! the domain with the three-multiply REDC step
//! ([`crate::fp::PrimeModulus::mul_redc`]), and lower the result **once** at the end of
//! the chain.
//!
//! [`MontFp<M>`] is that domain made explicit in the type system: a residue
//! that is statically known to be in Montgomery form. Conversions are the
//! `From` impls at the boundary; everything in between (`*`, [`MontFp::pow`],
//! [`MontFp::inverse`]) stays in the domain. The type is gated on the
//! [`MontgomeryModulus`] marker, so only moduli that opted into chain
//! routing expose it — for the fold-backed moduli (`P25`, `P61`) the
//! canonical representation is already the fastest one and the type simply
//! does not exist.
//!
//! Addition and subtraction are the ordinary modular ones: Montgomery form
//! is linear (`x̄ + ȳ = (x+y)·R`), so the carry-aware `Fp` algorithms apply
//! unchanged.
//!
//! The generic layers do not name this type: code bound on [`crate::fp::PrimeModulus`]
//! (e.g. `Fp::pow`, `Fp::batch_inverse`, the NTT plans) branches on the
//! const [`crate::fp::PrimeModulus::MONTGOMERY_CHAINS`] flag and calls the raw `u64`
//! hooks directly, which lets the routing compile away for opted-out moduli.
//! `MontFp` is the ergonomic face of the same machinery for callers that
//! hold a concrete Montgomery-capable modulus — the benches drive the chain
//! comparisons through it.

use core::fmt;
use core::iter::Product;
use core::marker::PhantomData;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::fp::{Fp, MontgomeryModulus};

/// A field element held in Montgomery form (`x·R mod q`, `R = 2^64`).
///
/// Enter the domain with `MontFp::from(fp)`, chain multiplies inside it, and
/// leave with `Fp::from(mont)`; see the [module docs](self) for when this
/// wins.
#[derive(Copy, Clone, Default, PartialEq, Eq)]
pub struct MontFp<M: MontgomeryModulus>(u64, PhantomData<M>);

impl<M: MontgomeryModulus> MontFp<M> {
    /// The additive identity (`0·R = 0`: the zero residue is shared between
    /// the domains).
    pub const ZERO: Self = MontFp(0, PhantomData);
    /// The multiplicative identity `1·R mod q`.
    pub const ONE: Self = MontFp(M::MONT_R, PhantomData);

    /// The raw Montgomery residue in `[0, q)`.
    ///
    /// This is **not** the canonical representative — convert back through
    /// `Fp::from` for that.
    #[inline]
    pub const fn residue(self) -> u64 {
        self.0
    }

    /// Modular exponentiation by squaring, entirely inside the domain: the
    /// result is `x^exponent` in Montgomery form.
    pub fn pow(self, exponent: u64) -> Self {
        MontFp(crate::fp::pow_redc_raw::<M>(self.0, exponent), PhantomData)
    }

    /// The multiplicative inverse, in Montgomery form.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn inverse(self) -> Self {
        self.try_inverse()
            .expect("attempted to invert the zero element of a prime field")
    }

    /// The multiplicative inverse, or `None` for zero.
    pub fn try_inverse(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            // Fermat: x̄^(q-2) = x^(q-2)·R = x^(-1)·R — still in the domain.
            Some(self.pow(M::MODULUS - 2))
        }
    }

    /// `true` iff the element is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// Compile-time tie between the public marker and the routing flag: every
/// [`MontgomeryModulus`] implementor **must** also flip
/// [`crate::PrimeModulus::MONTGOMERY_CHAINS`] on, or the chain-heavy paths
/// (`Fp::pow`, batch inversion, NTT twiddles) would silently stay un-routed
/// while `MontFp` advertises the domain. Evaluated in an inline-`const`
/// block on the domain's entry point, so a mismatched modulus fails to
/// *compile* the moment any code enters the domain.
const fn assert_chains_routed<M: MontgomeryModulus>() {
    assert!(
        M::MONTGOMERY_CHAINS,
        "MontgomeryModulus implementors must set MONTGOMERY_CHAINS = true"
    );
}

impl<M: MontgomeryModulus> From<Fp<M>> for MontFp<M> {
    /// Enters the Montgomery domain: one `mul_redc` by `R²`.
    #[inline]
    fn from(value: Fp<M>) -> Self {
        const { assert_chains_routed::<M>() }
        MontFp(M::to_montgomery(value.value()), PhantomData)
    }
}

impl<M: MontgomeryModulus> From<MontFp<M>> for Fp<M> {
    /// Leaves the Montgomery domain: one bare REDC.
    #[inline]
    fn from(value: MontFp<M>) -> Self {
        Fp::new(M::from_montgomery(value.0))
    }
}

impl<M: MontgomeryModulus> Mul for MontFp<M> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        MontFp(M::mul_redc(self.0, rhs.0), PhantomData)
    }
}

impl<M: MontgomeryModulus> MulAssign for MontFp<M> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<M: MontgomeryModulus> Add for MontFp<M> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        // Montgomery form is linear, so this is the carry-aware modular add
        // of Fp verbatim.
        let (mut sum, carry) = self.0.overflowing_add(rhs.0);
        if carry || sum >= M::MODULUS {
            sum = sum.wrapping_sub(M::MODULUS);
        }
        MontFp(sum, PhantomData)
    }
}

impl<M: MontgomeryModulus> AddAssign for MontFp<M> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<M: MontgomeryModulus> Sub for MontFp<M> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (difference, borrow) = self.0.overflowing_sub(rhs.0);
        let difference = if borrow {
            difference.wrapping_add(M::MODULUS)
        } else {
            difference
        };
        MontFp(difference, PhantomData)
    }
}

impl<M: MontgomeryModulus> SubAssign for MontFp<M> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<M: MontgomeryModulus> Neg for MontFp<M> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            MontFp(M::MODULUS - self.0, PhantomData)
        }
    }
}

impl<M: MontgomeryModulus> Product for MontFp<M> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |acc, x| acc * x)
    }
}

impl<M: MontgomeryModulus> fmt::Debug for MontFp<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(mont {})", M::NAME, self.0)
    }
}

/// Lifts a slice into the Montgomery domain (one `mul_redc` per element) —
/// the "enter once" end of a chain over many values.
pub fn to_montgomery_vec<M: MontgomeryModulus>(values: &[Fp<M>]) -> Vec<MontFp<M>> {
    values.iter().map(|&v| MontFp::from(v)).collect()
}

/// Lowers a slice back to canonical form (one REDC per element).
pub fn from_montgomery_vec<M: MontgomeryModulus>(values: &[MontFp<M>]) -> Vec<Fp<M>> {
    values.iter().map(|&v| Fp::from(v)).collect()
}

/// The powers `[1, x, x², …, x^{len-1}]`, computed as a single dependent
/// product chain.
///
/// For chain-routed moduli the hybrid-multiply trick applies: the base is
/// lifted to Montgomery form once and every step is a bare
/// [`crate::fp::PrimeModulus::mul_redc`] whose *output is already
/// canonical* (`x^k · x̄ · R^{-1} = x^{k+1}`), so the series costs one
/// conversion total — no per-element domain traffic. Freivalds
/// power-structured keys and the NTT coset scalings are built on this.
pub fn power_series<M: crate::fp::PrimeModulus>(base: Fp<M>, len: usize) -> Vec<Fp<M>> {
    let mut powers = Vec::with_capacity(len);
    if M::MONTGOMERY_CHAINS {
        let lifted = M::to_montgomery(base.value());
        let mut current = Fp::<M>::ONE;
        for _ in 0..len {
            powers.push(current);
            current = Fp::new(M::mul_redc(current.value(), lifted));
        }
    } else {
        let mut current = Fp::<M>::ONE;
        for _ in 0..len {
            powers.push(current);
            current *= base;
        }
    }
    powers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::{PrimeField, PrimeModulus, P25, P251, P61, P64};
    use proptest::prelude::*;

    type F = Fp<P251>;
    type MF = MontFp<P251>;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn chain_flag_matches_marker_expectations() {
        // The marker contract: implementors of MontgomeryModulus flip the
        // const flag; opted-out moduli keep the default.
        assert!(P251::MONTGOMERY_CHAINS);
        assert!(P64::MONTGOMERY_CHAINS);
        assert!(!P25::MONTGOMERY_CHAINS);
        assert!(!P61::MONTGOMERY_CHAINS);
    }

    // The defining identities of the MONT_* constants are asserted once, in
    // `crate::reduce::tests` — the tests here cover the `MontFp` layer only.

    #[test]
    fn round_trip_is_identity_at_boundaries() {
        fn check<M: MontgomeryModulus>() {
            for raw in [0u64, 1, 2, M::MODULUS / 2, M::MODULUS - 2, M::MODULUS - 1] {
                let x = Fp::<M>::from_u64(raw);
                assert_eq!(Fp::<M>::from(MontFp::from(x)), x, "{}", M::NAME);
            }
        }
        check::<P251>();
        check::<P64>();
    }

    #[test]
    fn chain_product_matches_canonical_product() {
        let values: Vec<F> = (1..=40u64).map(F::from_u64).collect();
        let expected: F = values.iter().copied().product();
        let chained: MF = to_montgomery_vec(&values).into_iter().product();
        assert_eq!(Fp::from(chained), expected);
        assert_eq!(from_montgomery_vec(&to_montgomery_vec(&values)), values);
    }

    #[test]
    fn pow_and_inverse_stay_in_domain() {
        for raw in [1u64, 2, 7, 250] {
            let x = F::from_u64(raw);
            let lifted = MF::from(x);
            assert_eq!(Fp::from(lifted.pow(13)), x.pow(13));
            assert_eq!(Fp::from(lifted.inverse()), x.inverse());
            assert_eq!(lifted * lifted.inverse(), MF::ONE);
        }
        assert!(MF::ZERO.try_inverse().is_none());
        assert_eq!(MF::from(F::from_u64(5)).pow(0), MF::ONE);
    }

    #[test]
    fn additive_structure_is_preserved() {
        let near = Fp::<P64>::from_u64(P64::MODULUS - 1);
        let one = Fp::<P64>::ONE;
        let (a, b) = (MontFp::from(near), MontFp::from(one));
        // Carry-aware add/sub on 64-bit residues.
        assert_eq!(Fp::from(a + b), near + one);
        assert_eq!(Fp::from(b - a), one - near);
        assert_eq!(Fp::from(-a), -near);
        assert_eq!(a + (-a), MontFp::ZERO);
    }

    #[test]
    fn power_series_matches_repeated_multiplication() {
        fn check<M: PrimeModulus>(raw: u64) {
            let base = Fp::<M>::from_u64(raw);
            let series = power_series(base, 9);
            let mut expected = Fp::<M>::ONE;
            for (k, &power) in series.iter().enumerate() {
                assert_eq!(power, expected, "{} power {k}", M::NAME);
                expected *= base;
            }
        }
        // Both the Montgomery-routed and the plain chain, incl. boundaries.
        check::<P251>(250);
        check::<P64>(P64::MODULUS - 1);
        check::<P25>(123_456);
        check::<P61>(P61::MODULUS - 2);
        assert!(power_series(F::from_u64(3), 0).is_empty());
    }

    proptest! {
        #[test]
        fn prop_round_trip_is_identity(raw in any::<u64>()) {
            let x = Fp::<P251>::from_u64(raw);
            prop_assert_eq!(Fp::from(MontFp::from(x)), x);
            let y = Fp::<P64>::from_u64(raw);
            prop_assert_eq!(Fp::from(MontFp::from(y)), y);
        }

        #[test]
        fn prop_domain_multiplication_is_isomorphic(a in any::<u64>(), b in any::<u64>()) {
            let (x, y) = (Fp::<P64>::from_u64(a), Fp::<P64>::from_u64(b));
            prop_assert_eq!(Fp::from(MontFp::from(x) * MontFp::from(y)), x * y);
            let (x, y) = (Fp::<P251>::from_u64(a), Fp::<P251>::from_u64(b));
            prop_assert_eq!(Fp::from(MontFp::from(x) * MontFp::from(y)), x * y);
        }

        #[test]
        fn prop_power_series_prefix_consistency(raw in any::<u64>(), len in 1usize..40) {
            let base = Fp::<P64>::from_u64(raw);
            let series = power_series(base, len);
            prop_assert_eq!(series.len(), len);
            for window in series.windows(2) {
                prop_assert_eq!(window[1], window[0] * base);
            }
        }
    }
}
