//! Slice-level field kernels: element-wise arithmetic, lazy-reduction dot
//! products and accumulators, and Montgomery batch inversion.
//!
//! These are the inner loops of the encoder (`X̃ = Σ X_j ℓ_j(α)`), the worker
//! compute kernels (`X̃ w`, `X̃ᵀ e`) and the Freivalds verifier (`r · z̃`).
//! They exploit *lazy reduction*: products of canonical representatives are
//! accumulated unreduced in `u128` lanes and collapsed through the modulus's
//! specialized [`PrimeModulus::reduce_wide`] backend only every
//! [`PrimeModulus::WIDE_BATCH`] products — a compile-time bound derived from
//! the modulus (see [`assert_wide_batch`]) guaranteeing the accumulator can
//! never overflow. For the paper's 25-bit field the batch exceeds any
//! realistic vector length, so a dot product performs exactly one reduction;
//! for the 61-bit field a reduction happens every ~63 products.
//!
//! On top of the lazy reduction, the hot sweeps ([`dot`],
//! [`WideAccumulator::axpy`]) are *vectorized*: they stripe over
//! [`DOT_LANES`] independent `u128` accumulator lanes so consecutive
//! multiply-adds never serialize on a single accumulator's add-with-carry
//! chain. The striping is pure instruction-level parallelism in safe,
//! portable code — no `unsafe`, no target-feature gates — and the
//! [`PrimeModulus::WIDE_BATCH`] overflow bound is enforced per lane by the
//! same compile-time guard, so the vector path admits exactly the moduli the
//! scalar path did.

use crate::fp::{Fp, PrimeField, PrimeModulus};

/// Compile-time guard that lazy accumulation is sound for a modulus: at least
/// one product must fit per reduction. Every kernel in this module evaluates
/// it in an inline-`const` block, so an unsound modulus fails to *compile*
/// rather than overflow at run time.
pub const fn assert_wide_batch<M: PrimeModulus>() {
    assert!(
        M::WIDE_BATCH >= 1,
        "modulus too large for lazy reduction: one (q-1)^2 product must fit in u128"
    );
}

/// Number of independent `u128` accumulator lanes the vectorized kernels
/// stripe over. A single running accumulator serializes on its own add
/// (`u128` add-with-carry latency per product) and, worse, on the
/// [`PrimeModulus::reduce_wide`] collapse it must pay every
/// [`PrimeModulus::WIDE_BATCH`] products; four independent lanes let the
/// multiplies, adds and per-lane collapses overlap, and the compiler keep
/// all four in registers. The lanes are folded with field additions only at
/// the end, so the result is bit-identical to the single-lane kernel.
pub const DOT_LANES: usize = 4;

/// Batch size above which [`dot`] skips the lane striping and keeps one
/// running accumulator. Striping pays off exactly when the collapse cadence
/// is tight (`F_{2^61-1}`: every 63 products; Goldilocks: every product) —
/// the per-lane collapses then overlap instead of serializing. When a single
/// accumulator can absorb any realistic vector without collapsing (the
/// 25-bit field's batch is ≈ 2^78), the loop is a plain multiply-add
/// reduction that the optimizer already reassociates across iterations, and
/// manual striping only adds bookkeeping — measured, see the
/// `dot_lanes/<field>` benches and `BENCH_PR4.json`.
pub const LANE_STRIPE_MAX_BATCH: usize = 1 << 16;

/// Element-wise sum of two equal-length slices into a new vector.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn slice_add<M: PrimeModulus>(a: &[Fp<M>], b: &[Fp<M>]) -> Vec<Fp<M>> {
    assert_eq!(a.len(), b.len(), "slice_add length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect()
}

/// Element-wise difference `a − b` of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn slice_sub<M: PrimeModulus>(a: &[Fp<M>], b: &[Fp<M>]) -> Vec<Fp<M>> {
    assert_eq!(a.len(), b.len(), "slice_sub length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x - y).collect()
}

/// In-place element-wise accumulation `a[i] += b[i]`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn slice_add_assign<M: PrimeModulus>(a: &mut [Fp<M>], b: &[Fp<M>]) {
    assert_eq!(a.len(), b.len(), "slice_add_assign length mismatch");
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x += y;
    }
}

/// Scales every element of `a` by the scalar `c` into a new vector.
pub fn slice_scale<M: PrimeModulus>(a: &[Fp<M>], c: Fp<M>) -> Vec<Fp<M>> {
    let scale = c.value() as u128;
    a.iter()
        .map(|&x| Fp::from_canonical(M::reduce_wide(scale * x.value() as u128)))
        .collect()
}

/// In-place fused multiply-add `acc[i] += c * b[i]`.
///
/// One reduction per element (of `c·b[i] + acc[i]`, which never overflows a
/// `u128`). When several axpys accumulate into the same output — the Lagrange
/// encoder/decoder case — prefer [`WideAccumulator`], which defers reduction
/// across *all* of them.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn slice_axpy<M: PrimeModulus>(acc: &mut [Fp<M>], c: Fp<M>, b: &[Fp<M>]) {
    assert_eq!(acc.len(), b.len(), "slice_axpy length mismatch");
    const { assert_wide_batch::<M>() }
    let scale = c.value() as u128;
    for (x, &y) in acc.iter_mut().zip(b.iter()) {
        *x = Fp::from_canonical(M::reduce_wide(
            scale * y.value() as u128 + x.value() as u128,
        ));
    }
}

/// Inner product `Σ a[i]·b[i]` with lazy reduction, vectorized over
/// [`DOT_LANES`] independent `u128` accumulator lanes for the moduli whose
/// collapse cadence is tight enough to profit (see
/// [`LANE_STRIPE_MAX_BATCH`]; the selection is a `const` branch that folds
/// away).
///
/// On the striped path, unreduced products stripe across the lanes
/// (`lane[j]` absorbs elements `j, j+4, j+8, …` of each chunk), each lane is
/// reduced through the specialized backend once every
/// [`PrimeModulus::WIDE_BATCH`] of *its* products, and the canonical lane
/// totals are folded with field additions at the end — the inner loop is
/// four independent multiply-adds per step, with no division, no comparison,
/// no branch, and no dependency chain between consecutive products. The
/// [`PrimeModulus::WIDE_BATCH`] overflow bound holds per lane exactly as it
/// does for the scalar kernel: a chunk of `DOT_LANES · WIDE_BATCH` elements
/// feeds at most `WIDE_BATCH` products into any one lane between collapses.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot<M: PrimeModulus>(a: &[Fp<M>], b: &[Fp<M>]) -> Fp<M> {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    const { assert_wide_batch::<M>() }
    if const { M::WIDE_BATCH > LANE_STRIPE_MAX_BATCH } {
        // Huge-batch moduli: one accumulator, (almost) no collapses — the
        // optimizer already runs this reduction wide.
        let mut accumulator: u128 = 0;
        for (chunk_a, chunk_b) in a.chunks(M::WIDE_BATCH).zip(b.chunks(M::WIDE_BATCH)) {
            for (&x, &y) in chunk_a.iter().zip(chunk_b.iter()) {
                accumulator += x.value() as u128 * y.value() as u128;
            }
            accumulator = M::reduce_wide(accumulator) as u128;
        }
        return Fp::from_canonical(M::reduce_wide(accumulator));
    }
    let chunk_len = M::WIDE_BATCH.saturating_mul(DOT_LANES);
    let mut lanes = [0u128; DOT_LANES];
    for (chunk_a, chunk_b) in a.chunks(chunk_len).zip(b.chunks(chunk_len)) {
        let mut groups_a = chunk_a.chunks_exact(DOT_LANES);
        let mut groups_b = chunk_b.chunks_exact(DOT_LANES);
        for (ga, gb) in groups_a.by_ref().zip(groups_b.by_ref()) {
            lanes[0] += ga[0].value() as u128 * gb[0].value() as u128;
            lanes[1] += ga[1].value() as u128 * gb[1].value() as u128;
            lanes[2] += ga[2].value() as u128 * gb[2].value() as u128;
            lanes[3] += ga[3].value() as u128 * gb[3].value() as u128;
        }
        for ((lane, &x), &y) in lanes
            .iter_mut()
            .zip(groups_a.remainder())
            .zip(groups_b.remainder())
        {
            *lane += x.value() as u128 * y.value() as u128;
        }
        for lane in lanes.iter_mut() {
            *lane = M::reduce_wide(*lane) as u128;
        }
    }
    // Every lane is canonical after the per-chunk collapse (or still zero),
    // so the fold is plain field addition.
    lanes
        .into_iter()
        .map(|lane| Fp::from_canonical(lane as u64))
        .fold(Fp::<M>::ZERO, |acc, lane| acc + lane)
}

/// A vector of `u128` lanes accumulating unreduced products — the shared
/// engine of the Lagrange encoder (`Σ_j ℓ_j(α)·X_j`), the erasure decoder and
/// the blocked matrix kernels.
///
/// Each `axpy` adds one product per lane; after [`PrimeModulus::WIDE_BATCH`]
/// accumulated products the lanes are collapsed with one reduction each.
/// Compared to repeated [`slice_axpy`] this performs `1/WIDE_BATCH` as many
/// reductions (for the 25-bit field: one reduction per lane, total).
#[derive(Debug, Clone)]
pub struct WideAccumulator<M: PrimeModulus> {
    lanes: Vec<u128>,
    /// Products accumulated since the last collapse.
    pending: usize,
    _modulus: core::marker::PhantomData<M>,
}

impl<M: PrimeModulus> WideAccumulator<M> {
    /// Creates a zeroed accumulator with `len` lanes.
    pub fn new(len: usize) -> Self {
        const { assert_wide_batch::<M>() }
        WideAccumulator {
            lanes: vec![0u128; len],
            pending: 0,
            _modulus: core::marker::PhantomData,
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// `true` iff the accumulator has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Fused multiply-add `lane[i] += c · b[i]`, reducing lazily.
    ///
    /// The sweep is unrolled [`DOT_LANES`] lanes at a time: the lanes are
    /// already independent, and the explicit four-wide groups keep the
    /// `u128` multiply-adds flowing without per-element loop control.
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the number of lanes.
    pub fn axpy(&mut self, c: Fp<M>, b: &[Fp<M>]) {
        assert_eq!(self.lanes.len(), b.len(), "axpy length mismatch");
        if self.pending == M::WIDE_BATCH {
            self.collapse();
        }
        let scale = c.value() as u128;
        let mut lane_groups = self.lanes.chunks_exact_mut(DOT_LANES);
        let mut b_groups = b.chunks_exact(DOT_LANES);
        for (lanes, values) in lane_groups.by_ref().zip(b_groups.by_ref()) {
            lanes[0] += scale * values[0].value() as u128;
            lanes[1] += scale * values[1].value() as u128;
            lanes[2] += scale * values[2].value() as u128;
            lanes[3] += scale * values[3].value() as u128;
        }
        for (lane, &y) in lane_groups
            .into_remainder()
            .iter_mut()
            .zip(b_groups.remainder())
        {
            *lane += scale * y.value() as u128;
        }
        self.pending += 1;
    }

    /// Adds already-canonical values (one addition counts as one product
    /// against the overflow budget, which is conservative).
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the number of lanes.
    pub fn add(&mut self, b: &[Fp<M>]) {
        assert_eq!(self.lanes.len(), b.len(), "add length mismatch");
        if self.pending == M::WIDE_BATCH {
            self.collapse();
        }
        for (lane, &y) in self.lanes.iter_mut().zip(b.iter()) {
            *lane += y.value() as u128;
        }
        self.pending += 1;
    }

    /// Reduces every lane to its canonical representative in place.
    fn collapse(&mut self) {
        for lane in self.lanes.iter_mut() {
            *lane = M::reduce_wide(*lane) as u128;
        }
        self.pending = 0;
    }

    /// Reduces and returns the accumulated vector.
    pub fn finish(self) -> Vec<Fp<M>> {
        self.lanes
            .into_iter()
            .map(|lane| Fp::from_canonical(M::reduce_wide(lane)))
            .collect()
    }

    /// Reduces the accumulated values into an existing slice (the blocked
    /// kernels reuse one accumulator across tiles).
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the number of lanes.
    pub fn finish_into(mut self, out: &mut [Fp<M>]) {
        assert_eq!(self.lanes.len(), out.len(), "finish_into length mismatch");
        for (slot, lane) in out.iter_mut().zip(self.lanes.drain(..)) {
            *slot = Fp::from_canonical(M::reduce_wide(lane));
        }
    }
}

/// Montgomery batch inversion: inverts every element of `values` using a
/// single field inversion plus `3(n−1)` multiplications.
///
/// Free-function form of [`PrimeField::batch_inverse`], kept for callers that
/// work with a concrete [`PrimeModulus`].
///
/// # Panics
/// Panics if any element is zero.
pub fn batch_inverse<M: PrimeModulus>(values: &[Fp<M>]) -> Vec<Fp<M>> {
    <Fp<M> as PrimeField>::batch_inverse(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::{P25, P251, P61};
    use proptest::prelude::*;

    type F = Fp<P25>;

    fn fv(values: &[u64]) -> Vec<F> {
        values.iter().map(|&v| F::from_u64(v)).collect()
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn wide_batch_constants_are_sane() {
        // P25 products are ~2^50: the whole u128 is effectively one batch.
        assert!(P25::WIDE_BATCH > 1 << 40);
        // P61 products are ~2^122: roughly 63 fit.
        assert!((32..256).contains(&P61::WIDE_BATCH), "{}", P61::WIDE_BATCH);
        assert!(P251::WIDE_BATCH > 1 << 40);
        // The 64-bit Goldilocks modulus degenerates to one product per
        // reduction — the minimum the compile-time guard admits.
        assert_eq!(crate::fp::P64::WIDE_BATCH, 1);
    }

    #[test]
    fn goldilocks_kernels_survive_batch_of_one() {
        // WIDE_BATCH = 1 forces a collapse on every accumulation; the lazy
        // kernels must still match the element-wise reference at the extremes.
        type H = Fp<crate::fp::P64>;
        const Q: u64 = crate::fp::P64::MODULUS;
        let a: Vec<H> = (0..100u64).map(|i| H::from_u64(Q - 1 - i)).collect();
        let b: Vec<H> = (0..100u64).map(|i| H::from_u64(Q - 7 - i)).collect();
        let reference: H = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
        assert_eq!(dot(&a, &b), reference);
        let near = H::from_u64(Q - 1);
        let mut accumulator = WideAccumulator::<crate::fp::P64>::new(4);
        let lane = vec![near; 4];
        for _ in 0..10 {
            accumulator.axpy(near, &lane);
        }
        // (q−1)^2 ≡ 1, so ten accumulations of it sum to 10.
        assert_eq!(accumulator.finish(), vec![H::from_u64(10); 4]);
    }

    #[test]
    fn slice_add_and_sub_are_inverses() {
        let a = fv(&[1, 2, 3, 4]);
        let b = fv(&[10, 20, 30, 40]);
        let sum = slice_add(&a, &b);
        assert_eq!(slice_sub(&sum, &b), a);
    }

    #[test]
    fn slice_add_assign_matches_slice_add() {
        let mut a = fv(&[5, 6, 7]);
        let b = fv(&[1, 1, 1]);
        let expected = slice_add(&a, &b);
        slice_add_assign(&mut a, &b);
        assert_eq!(a, expected);
    }

    #[test]
    fn slice_scale_by_one_is_identity() {
        let a = fv(&[9, 8, 7]);
        assert_eq!(slice_scale(&a, F::ONE), a);
    }

    #[test]
    fn slice_axpy_accumulates() {
        let mut acc = fv(&[1, 2, 3]);
        let b = fv(&[10, 10, 10]);
        slice_axpy(&mut acc, F::from_u64(2), &b);
        assert_eq!(acc, fv(&[21, 22, 23]));
    }

    #[test]
    fn dot_matches_naive_reference() {
        let a = fv(&[1, 2, 3, 4, 5]);
        let b = fv(&[5, 4, 3, 2, 1]);
        let naive: F = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
        assert_eq!(dot(&a, &b), naive);
    }

    #[test]
    fn dot_of_empty_slices_is_zero() {
        let empty: Vec<F> = Vec::new();
        assert_eq!(dot(&empty, &empty), F::ZERO);
    }

    #[test]
    fn dot_handles_values_near_modulus() {
        let near = F::from_u64(P25::MODULUS - 1);
        let a = vec![near; 10_000];
        let b = vec![near; 10_000];
        let naive: F = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
        assert_eq!(dot(&a, &b), naive);
    }

    #[test]
    fn dot_matches_reference_across_lane_remainders() {
        // The 4-lane striping: exercise every remainder class (0..=3 leftover
        // elements) and lengths shorter than one lane group.
        for len in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17] {
            let a: Vec<F> = (0..len as u64).map(|i| F::from_u64(i * 7 + 1)).collect();
            let b: Vec<F> = (0..len as u64).map(|i| F::from_u64(i * 13 + 3)).collect();
            let naive: F = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
            assert_eq!(dot(&a, &b), naive, "len = {len}");
        }
    }

    #[test]
    fn dot_crosses_the_p61_lane_chunk_boundary() {
        // With 4 lanes the collapse boundary sits at 4 * WIDE_BATCH elements;
        // straddle it, land exactly on it, and overshoot by a non-multiple
        // of the lane count.
        type G = Fp<P61>;
        let chunk = P61::WIDE_BATCH * DOT_LANES;
        for len in [chunk - 1, chunk, chunk + 1, chunk * 2 + 3] {
            let a: Vec<G> = (0..len as u64)
                .map(|i| G::from_u64(P61::MODULUS - 1 - (i % 11)))
                .collect();
            let b: Vec<G> = (0..len as u64)
                .map(|i| G::from_u64(P61::MODULUS - 5 - (i % 7)))
                .collect();
            let naive: G = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
            assert_eq!(dot(&a, &b), naive, "len = {len}");
        }
    }

    #[test]
    fn axpy_matches_slice_axpy_across_lane_remainders() {
        for len in [1usize, 3, 4, 5, 7, 8, 11] {
            let b: Vec<F> = (0..len as u64)
                .map(|i| F::from_u64(P25::MODULUS - 1 - i))
                .collect();
            let c = F::from_u64(P25::MODULUS - 2);
            let mut expected = vec![F::ZERO; len];
            let mut accumulator = WideAccumulator::<P25>::new(len);
            for _ in 0..3 {
                slice_axpy(&mut expected, c, &b);
                accumulator.axpy(c, &b);
            }
            assert_eq!(accumulator.finish(), expected, "len = {len}");
        }
    }

    #[test]
    fn dot_crosses_the_p61_reduction_batch() {
        // Vector longer than WIDE_BATCH forces mid-loop collapses in F_{2^61-1}.
        type G = Fp<P61>;
        let len = P61::WIDE_BATCH * 3 + 7;
        let a: Vec<G> = (0..len as u64)
            .map(|i| G::from_u64(P61::MODULUS - 1 - i))
            .collect();
        let b: Vec<G> = (0..len as u64)
            .map(|i| G::from_u64(P61::MODULUS - 7 - i))
            .collect();
        let naive: G = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
        assert_eq!(dot(&a, &b), naive);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        let _ = dot(&fv(&[1]), &fv(&[1, 2]));
    }

    #[test]
    fn wide_accumulator_matches_repeated_axpy() {
        let blocks = [fv(&[1, 2, 3]), fv(&[4, 5, 6]), fv(&[7, 8, 9])];
        let coefficients = fv(&[3, 1, 4]);
        let mut expected = fv(&[0, 0, 0]);
        let mut accumulator = WideAccumulator::<P25>::new(3);
        for (c, b) in coefficients.iter().zip(blocks.iter()) {
            slice_axpy(&mut expected, *c, b);
            accumulator.axpy(*c, b);
        }
        assert_eq!(accumulator.finish(), expected);
    }

    #[test]
    fn wide_accumulator_collapses_past_the_batch_limit() {
        type G = Fp<P61>;
        let near = G::from_u64(P61::MODULUS - 1);
        let b = vec![near; 4];
        let mut accumulator = WideAccumulator::<P61>::new(4);
        let rounds = P61::WIDE_BATCH * 2 + 5;
        for _ in 0..rounds {
            accumulator.axpy(near, &b);
        }
        // (q-1)^2 * rounds mod q == rounds mod q (since (q-1)^2 ≡ 1).
        let expected = G::from_u64(rounds as u64);
        assert_eq!(accumulator.finish(), vec![expected; 4]);
    }

    #[test]
    fn wide_accumulator_add_matches_slice_add() {
        let a = fv(&[1, 2, 3]);
        let b = fv(&[P25::MODULUS - 1, 5, 6]);
        let mut accumulator = WideAccumulator::<P25>::new(3);
        accumulator.add(&a);
        accumulator.add(&b);
        assert_eq!(accumulator.finish(), slice_add(&a, &b));
    }

    #[test]
    fn wide_accumulator_finish_into_writes_slice() {
        let mut accumulator = WideAccumulator::<P25>::new(2);
        accumulator.axpy(F::from_u64(3), &fv(&[10, 20]));
        let mut out = fv(&[0, 0]);
        accumulator.finish_into(&mut out);
        assert_eq!(out, fv(&[30, 60]));
    }

    #[test]
    fn batch_inverse_matches_individual_inverses() {
        let values = fv(&[1, 2, 3, 12345, P25::MODULUS - 1]);
        let inverses = batch_inverse(&values);
        for (v, inv) in values.iter().zip(inverses.iter()) {
            assert_eq!(*v * *inv, F::ONE);
        }
    }

    #[test]
    fn batch_inverse_of_empty_is_empty() {
        assert!(batch_inverse::<P25>(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "zero element")]
    fn batch_inverse_rejects_zero() {
        let _ = batch_inverse(&fv(&[1, 0, 2]));
    }

    proptest! {
        #[test]
        fn prop_dot_is_bilinear(
            a in proptest::collection::vec(0..P25::MODULUS, 1..50),
            b in proptest::collection::vec(0..P25::MODULUS, 1..50),
            c in 0..P25::MODULUS,
        ) {
            let n = a.len().min(b.len());
            let a: Vec<F> = a[..n].iter().map(|&v| F::from_u64(v)).collect();
            let b: Vec<F> = b[..n].iter().map(|&v| F::from_u64(v)).collect();
            let c = F::from_u64(c);
            let scaled = slice_scale(&a, c);
            prop_assert_eq!(dot(&scaled, &b), c * dot(&a, &b));
        }

        #[test]
        fn prop_lazy_dot_matches_elementwise_reference_all_moduli(
            raw_a in proptest::collection::vec(any::<u64>(), 1..80),
            raw_b in proptest::collection::vec(any::<u64>(), 1..80),
        ) {
            let n = raw_a.len().min(raw_b.len());
            fn check<M: PrimeModulus>(raw_a: &[u64], raw_b: &[u64], n: usize) {
                let a: Vec<Fp<M>> = raw_a[..n].iter().map(|&v| Fp::from_u64(v)).collect();
                let b: Vec<Fp<M>> = raw_b[..n].iter().map(|&v| Fp::from_u64(v)).collect();
                let reference: Fp<M> = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
                assert_eq!(dot(&a, &b), reference);
            }
            check::<P25>(&raw_a, &raw_b, n);
            check::<P61>(&raw_a, &raw_b, n);
            check::<P251>(&raw_a, &raw_b, n);
            check::<crate::fp::P64>(&raw_a, &raw_b, n);
        }

        #[test]
        fn prop_batch_inverse_correct(
            raw in proptest::collection::vec(1..P25::MODULUS, 1..40)
        ) {
            let values: Vec<F> = raw.iter().map(|&v| F::from_u64(v)).collect();
            let inverses = batch_inverse(&values);
            for (v, inv) in values.iter().zip(inverses.iter()) {
                prop_assert_eq!(*v * *inv, F::ONE);
            }
        }
    }
}
