//! Slice-level field kernels: element-wise arithmetic, dot products and
//! Montgomery batch inversion.
//!
//! These are the inner loops of the encoder (`X̃ = Σ X_j ℓ_j(α)`), the worker
//! compute kernels (`X̃ w`, `X̃ᵀ e`) and the Freivalds verifier (`r · z̃`), so
//! they avoid per-element modular inversions and use lazy reduction where the
//! modulus permits.

use crate::fp::{Fp, PrimeField, PrimeModulus};

/// Element-wise sum of two equal-length slices into a new vector.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn slice_add<M: PrimeModulus>(a: &[Fp<M>], b: &[Fp<M>]) -> Vec<Fp<M>> {
    assert_eq!(a.len(), b.len(), "slice_add length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect()
}

/// Element-wise difference `a − b` of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn slice_sub<M: PrimeModulus>(a: &[Fp<M>], b: &[Fp<M>]) -> Vec<Fp<M>> {
    assert_eq!(a.len(), b.len(), "slice_sub length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x - y).collect()
}

/// In-place element-wise accumulation `a[i] += b[i]`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn slice_add_assign<M: PrimeModulus>(a: &mut [Fp<M>], b: &[Fp<M>]) {
    assert_eq!(a.len(), b.len(), "slice_add_assign length mismatch");
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x += y;
    }
}

/// Scales every element of `a` by the scalar `c` into a new vector.
pub fn slice_scale<M: PrimeModulus>(a: &[Fp<M>], c: Fp<M>) -> Vec<Fp<M>> {
    a.iter().map(|&x| x * c).collect()
}

/// In-place fused multiply-add `acc[i] += c * b[i]`, the kernel used by the
/// Lagrange encoder when combining data blocks with basis coefficients.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn slice_axpy<M: PrimeModulus>(acc: &mut [Fp<M>], c: Fp<M>, b: &[Fp<M>]) {
    assert_eq!(acc.len(), b.len(), "slice_axpy length mismatch");
    for (x, &y) in acc.iter_mut().zip(b.iter()) {
        *x += c * y;
    }
}

/// Inner product `Σ a[i]·b[i]` with lazy reduction.
///
/// Products of canonical representatives are at most `(q−1)²`; they are summed
/// in a `u128` accumulator and reduced only when the accumulator would
/// otherwise overflow, then once at the end. For the paper's 25-bit field this
/// means a single final reduction for any realistic vector length.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot<M: PrimeModulus>(a: &[Fp<M>], b: &[Fp<M>]) -> Fp<M> {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let modulus = M::MODULUS as u128;
    let product_bound = (M::MODULUS as u128 - 1).pow(2);
    // Largest accumulator value for which adding one more product cannot
    // overflow a u128.
    let reduction_threshold = u128::MAX - product_bound;
    let mut accumulator: u128 = 0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let product = x.to_u64() as u128 * y.to_u64() as u128;
        if accumulator > reduction_threshold {
            accumulator %= modulus;
        }
        accumulator += product;
    }
    Fp::<M>::new((accumulator % modulus) as u64)
}

/// Montgomery batch inversion: inverts every element of `values` using a
/// single field inversion plus `3(n−1)` multiplications.
///
/// # Panics
/// Panics if any element is zero.
pub fn batch_inverse<M: PrimeModulus>(values: &[Fp<M>]) -> Vec<Fp<M>> {
    if values.is_empty() {
        return Vec::new();
    }
    // Prefix products: prefixes[i] = v0 * v1 * ... * vi.
    let mut prefixes = Vec::with_capacity(values.len());
    let mut running = Fp::<M>::ONE;
    for &v in values {
        assert!(!v.is_zero(), "batch_inverse: zero element");
        running *= v;
        prefixes.push(running);
    }
    let mut inverse_of_running = running.inverse();
    let mut result = vec![Fp::<M>::ZERO; values.len()];
    for i in (0..values.len()).rev() {
        if i == 0 {
            result[0] = inverse_of_running;
        } else {
            result[i] = inverse_of_running * prefixes[i - 1];
            inverse_of_running *= values[i];
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::P25;
    use proptest::prelude::*;

    type F = Fp<P25>;

    fn fv(values: &[u64]) -> Vec<F> {
        values.iter().map(|&v| F::from_u64(v)).collect()
    }

    #[test]
    fn slice_add_and_sub_are_inverses() {
        let a = fv(&[1, 2, 3, 4]);
        let b = fv(&[10, 20, 30, 40]);
        let sum = slice_add(&a, &b);
        assert_eq!(slice_sub(&sum, &b), a);
    }

    #[test]
    fn slice_add_assign_matches_slice_add() {
        let mut a = fv(&[5, 6, 7]);
        let b = fv(&[1, 1, 1]);
        let expected = slice_add(&a, &b);
        slice_add_assign(&mut a, &b);
        assert_eq!(a, expected);
    }

    #[test]
    fn slice_scale_by_one_is_identity() {
        let a = fv(&[9, 8, 7]);
        assert_eq!(slice_scale(&a, F::ONE), a);
    }

    #[test]
    fn slice_axpy_accumulates() {
        let mut acc = fv(&[1, 2, 3]);
        let b = fv(&[10, 10, 10]);
        slice_axpy(&mut acc, F::from_u64(2), &b);
        assert_eq!(acc, fv(&[21, 22, 23]));
    }

    #[test]
    fn dot_matches_naive_reference() {
        let a = fv(&[1, 2, 3, 4, 5]);
        let b = fv(&[5, 4, 3, 2, 1]);
        let naive: F = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
        assert_eq!(dot(&a, &b), naive);
    }

    #[test]
    fn dot_of_empty_slices_is_zero() {
        let empty: Vec<F> = Vec::new();
        assert_eq!(dot(&empty, &empty), F::ZERO);
    }

    #[test]
    fn dot_handles_values_near_modulus() {
        let near = F::from_u64(P25::MODULUS - 1);
        let a = vec![near; 10_000];
        let b = vec![near; 10_000];
        let naive: F = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
        assert_eq!(dot(&a, &b), naive);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        let _ = dot(&fv(&[1]), &fv(&[1, 2]));
    }

    #[test]
    fn batch_inverse_matches_individual_inverses() {
        let values = fv(&[1, 2, 3, 12345, P25::MODULUS - 1]);
        let inverses = batch_inverse(&values);
        for (v, inv) in values.iter().zip(inverses.iter()) {
            assert_eq!(*v * *inv, F::ONE);
        }
    }

    #[test]
    fn batch_inverse_of_empty_is_empty() {
        assert!(batch_inverse::<P25>(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "zero element")]
    fn batch_inverse_rejects_zero() {
        let _ = batch_inverse(&fv(&[1, 0, 2]));
    }

    proptest! {
        #[test]
        fn prop_dot_is_bilinear(
            a in proptest::collection::vec(0..P25::MODULUS, 1..50),
            b in proptest::collection::vec(0..P25::MODULUS, 1..50),
            c in 0..P25::MODULUS,
        ) {
            let n = a.len().min(b.len());
            let a: Vec<F> = a[..n].iter().map(|&v| F::from_u64(v)).collect();
            let b: Vec<F> = b[..n].iter().map(|&v| F::from_u64(v)).collect();
            let c = F::from_u64(c);
            let scaled = slice_scale(&a, c);
            prop_assert_eq!(dot(&scaled, &b), c * dot(&a, &b));
        }

        #[test]
        fn prop_batch_inverse_correct(
            raw in proptest::collection::vec(1..P25::MODULUS, 1..40)
        ) {
            let values: Vec<F> = raw.iter().map(|&v| F::from_u64(v)).collect();
            let inverses = batch_inverse(&values);
            for (v, inv) in values.iter().zip(inverses.iter()) {
                prop_assert_eq!(*v * *inv, F::ONE);
            }
        }
    }
}
