#!/usr/bin/env python3
"""Parse the criterion-shim bench output into a JSON summary and gate the
NTT and Montgomery-chain perf wins.

The bench harness (crates/shims/criterion) prints one line per benchmark:

    bench: <id> ... median <ns> ns/iter (<iters> iters)

This script collects those lines into ``{"results_ns_per_iter": {id: ns}}``
and enforces two regression gates:

* the PR2 gate: for every ``encode_f64`` / ``decode_f64`` pair at
  ``K >= 64`` the ``ntt`` path must be strictly faster than the ``matrix``
  path;
* the PR3 gate: for every ``pow_chain/p251`` / ``inverse_chain/p251`` pair
  at chain length >= 64 the ``montgomery`` path must be strictly faster
  than the ``barrett`` path (Montgomery loses to Barrett only below the
  domain-conversion break-even, which sits far under 64 products).

CI uploads the JSON as an artifact so perf history is inspectable per run.

Usage:
    cargo bench ... | tee bench.log
    python3 scripts/bench_regression.py bench.log --out bench_summary.json
"""

import argparse
import json
import re
import sys

BENCH_LINE = re.compile(
    r"^bench: (?P<id>\S+) \.\.\. median (?P<ns>[0-9.]+) ns/iter \((?P<iters>\d+) iters\)"
)
PAIR = re.compile(r"^(?P<group>(?:encode|decode)_f64)/k(?P<k>\d+)/(?P<path>matrix|ntt)$")
MONT_PAIR = re.compile(
    r"^(?P<group>(?:pow|inverse)_chain/p251)/len(?P<len>\d+)/(?P<path>barrett|montgomery)$"
)
MIN_GATED_K = 64
MIN_GATED_CHAIN = 64


def parse(lines):
    results = {}
    for line in lines:
        match = BENCH_LINE.match(line.strip())
        if match:
            results[match.group("id")] = float(match.group("ns"))
    return results


def gate(results):
    """Returns (checks, failures) for the matrix-vs-NTT pairs at K >= 64."""
    pairs = {}
    for bench_id in results:
        match = PAIR.match(bench_id)
        if match and int(match.group("k")) >= MIN_GATED_K:
            key = (match.group("group"), int(match.group("k")))
            pairs.setdefault(key, {})[match.group("path")] = results[bench_id]
    checks, failures = [], []
    for (group, k), paths in sorted(pairs.items()):
        if "matrix" not in paths or "ntt" not in paths:
            failures.append(f"{group}/k{k}: missing one side of the matrix/ntt pair")
            continue
        speedup = paths["matrix"] / paths["ntt"]
        check = {
            "pair": f"{group}/k{k}",
            "matrix_ns": paths["matrix"],
            "ntt_ns": paths["ntt"],
            "speedup": round(speedup, 2),
            "ok": paths["ntt"] < paths["matrix"],
        }
        checks.append(check)
        if not check["ok"]:
            failures.append(
                f"{group}/k{k}: ntt path ({paths['ntt']:.0f} ns) is not faster "
                f"than the matrix path ({paths['matrix']:.0f} ns)"
            )
    if not checks:
        failures.append("no encode_f64/decode_f64 matrix-vs-ntt pairs found in bench output")
    return checks, failures


def gate_montgomery(results):
    """Returns (checks, failures) for barrett-vs-montgomery chains >= 64."""
    pairs = {}
    for bench_id in results:
        match = MONT_PAIR.match(bench_id)
        if match and int(match.group("len")) >= MIN_GATED_CHAIN:
            key = (match.group("group"), int(match.group("len")))
            pairs.setdefault(key, {})[match.group("path")] = results[bench_id]
    checks, failures = [], []
    for (group, length), paths in sorted(pairs.items()):
        if "barrett" not in paths or "montgomery" not in paths:
            failures.append(
                f"{group}/len{length}: missing one side of the barrett/montgomery pair"
            )
            continue
        speedup = paths["barrett"] / paths["montgomery"]
        check = {
            "pair": f"{group}/len{length}",
            "barrett_ns": paths["barrett"],
            "montgomery_ns": paths["montgomery"],
            "speedup": round(speedup, 2),
            "ok": paths["montgomery"] < paths["barrett"],
        }
        checks.append(check)
        if not check["ok"]:
            failures.append(
                f"{group}/len{length}: montgomery path ({paths['montgomery']:.0f} ns) "
                f"is not faster than the barrett path ({paths['barrett']:.0f} ns)"
            )
    if not checks:
        failures.append(
            "no pow_chain/inverse_chain barrett-vs-montgomery pairs found in bench output"
        )
    return checks, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log", nargs="?", help="bench output file (defaults to stdin)")
    parser.add_argument("--out", help="write the JSON summary here")
    args = parser.parse_args()

    if args.log:
        with open(args.log, encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = sys.stdin.readlines()

    results = parse(lines)
    ntt_checks, ntt_failures = gate(results)
    mont_checks, mont_failures = gate_montgomery(results)
    failures = ntt_failures + mont_failures
    summary = {
        "results_ns_per_iter": results,
        "ntt_regression_checks": ntt_checks,
        "montgomery_chain_checks": mont_checks,
        "ok": not failures,
    }
    rendered = json.dumps(summary, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    print(rendered)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
