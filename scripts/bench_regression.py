#!/usr/bin/env python3
"""Parse the criterion-shim bench output into a JSON summary and gate the
NTT perf win.

The bench harness (crates/shims/criterion) prints one line per benchmark:

    bench: <id> ... median <ns> ns/iter (<iters> iters)

This script collects those lines into ``{"results_ns_per_iter": {id: ns}}``
and enforces the PR2 regression gate: for every ``encode_f64`` /
``decode_f64`` pair at ``K >= 64`` the ``ntt`` path must be strictly faster
than the ``matrix`` path. CI uploads the JSON as an artifact so perf history
is inspectable per run.

Usage:
    cargo bench ... | tee bench.log
    python3 scripts/bench_regression.py bench.log --out bench_summary.json
"""

import argparse
import json
import re
import sys

BENCH_LINE = re.compile(
    r"^bench: (?P<id>\S+) \.\.\. median (?P<ns>[0-9.]+) ns/iter \((?P<iters>\d+) iters\)"
)
PAIR = re.compile(r"^(?P<group>(?:encode|decode)_f64)/k(?P<k>\d+)/(?P<path>matrix|ntt)$")
MIN_GATED_K = 64


def parse(lines):
    results = {}
    for line in lines:
        match = BENCH_LINE.match(line.strip())
        if match:
            results[match.group("id")] = float(match.group("ns"))
    return results


def gate(results):
    """Returns (checks, failures) for the matrix-vs-NTT pairs at K >= 64."""
    pairs = {}
    for bench_id in results:
        match = PAIR.match(bench_id)
        if match and int(match.group("k")) >= MIN_GATED_K:
            key = (match.group("group"), int(match.group("k")))
            pairs.setdefault(key, {})[match.group("path")] = results[bench_id]
    checks, failures = [], []
    for (group, k), paths in sorted(pairs.items()):
        if "matrix" not in paths or "ntt" not in paths:
            failures.append(f"{group}/k{k}: missing one side of the matrix/ntt pair")
            continue
        speedup = paths["matrix"] / paths["ntt"]
        check = {
            "pair": f"{group}/k{k}",
            "matrix_ns": paths["matrix"],
            "ntt_ns": paths["ntt"],
            "speedup": round(speedup, 2),
            "ok": paths["ntt"] < paths["matrix"],
        }
        checks.append(check)
        if not check["ok"]:
            failures.append(
                f"{group}/k{k}: ntt path ({paths['ntt']:.0f} ns) is not faster "
                f"than the matrix path ({paths['matrix']:.0f} ns)"
            )
    if not checks:
        failures.append("no encode_f64/decode_f64 matrix-vs-ntt pairs found in bench output")
    return checks, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log", nargs="?", help="bench output file (defaults to stdin)")
    parser.add_argument("--out", help="write the JSON summary here")
    args = parser.parse_args()

    if args.log:
        with open(args.log, encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = sys.stdin.readlines()

    results = parse(lines)
    checks, failures = gate(results)
    summary = {
        "results_ns_per_iter": results,
        "ntt_regression_checks": checks,
        "ok": not failures,
    }
    rendered = json.dumps(summary, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    print(rendered)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
