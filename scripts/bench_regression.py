#!/usr/bin/env python3
"""Parse the criterion-shim bench output into a JSON summary, gate the
NTT / Montgomery-chain / pool / vector-lane perf wins, and render a
cross-PR perf-trajectory table against the committed baselines.

The bench harness (crates/shims/criterion) prints one line per benchmark:

    bench: <id> ... median <ns> ns/iter (<iters> iters)

This script collects those lines into ``{"results_ns_per_iter": {id: ns}}``
and enforces five regression gates:

* the PR2 gate: for every ``encode_f64`` / ``decode_f64`` pair at
  ``K >= 64`` the ``ntt`` path must be strictly faster than the ``matrix``
  path;
* the PR3 gate: for every ``pow_chain/p251`` / ``inverse_chain/p251`` pair
  at chain length >= 64 the ``montgomery`` path must be strictly faster
  than the ``barrett`` path (Montgomery loses to Barrett only below the
  domain-conversion break-even, which sits far under 64 products);
* the PR4 pool gate: for every ``mat_mat_512/<field>`` pair the ``pooled``
  kernel (work-stealing pool tasks) must not lose to the ``serial`` PR1
  blocked kernel. "Not lose" allows ``NOT_WORSE_TOLERANCE`` of noise: on a
  single-core host the pool degenerates to the serial path and the pair
  ties modulo measurement noise (the 512-cubed kernel gets only a few
  timed iterations in smoke mode), while multi-core hosts show a
  ~core-count win;
* the PR4 vector gate: for every ``dot_lanes/<field>/len<N>`` pair at
  ``N >= 4096`` the ``vectorized`` (lane-striped) dot must not lose to the
  ``scalar`` PR1 single-accumulator kernel (same tolerance);
* the PR5 straggler gate: for every ``decode_straggler/k<K>_miss<m>`` pair
  at ``K >= 64`` the ``tree`` (subproduct-tree partial decode) path must
  not lose to the ``dense`` Lagrange combination (same tolerance);
* the PR6 serving gate: for every ``serving/jobs<J>_fleet<W>`` pair at
  ``J >= 4`` the ``pipelined`` schedule must beat the ``synchronous``
  schedule by at least ``SERVING_MIN_SPEEDUP`` (1.3×). This one is a
  *strict win* gate, not a not-worse gate: the pipelined win comes from
  overlapping deterministic straggler sleeps across jobs, which does not
  depend on host core count;
* the PR6 autotune gate: for every ``chunk_autotune/<R>x<C>`` pair the
  ``auto`` chunk count must not lose to the historical ``fixed8`` fan-out
  (``NOT_WORSE_TOLERANCE`` applies — on hosts where 8 is the right count
  the pair ties);
* the PR7 batched-matmul gate: for every ``batched_matmul/m<F>`` pair the
  ``shared``-encode path (one ``MatMulBatch`` job) must not lose to the
  ``independent`` path (``F`` separately-encoded jobs) at any ``F``, and
  must beat it by at least ``BATCHED_MIN_SPEEDUP`` (2×) at
  ``F >= MIN_GATED_FUNCTIONS``. The win is structural: the shared path
  encodes, generates keys and interpolates the Lagrange basis once where
  the independent path pays all three per function;
* the PR8 wire gates: for every ``wire_crc/n<N>`` pair the ``sliced``
  (slicing-by-8) CRC-32C kernel must not lose to the ``bytewise``
  reference, and for every ``wire_encode/n<N>`` pair the ``bulk``
  element-serialization path (``WireWriter::put_u64_bulk``) must not lose
  to the per-element ``element`` loop (``NOT_WORSE_TOLERANCE`` applies to
  both; the committed capture shows ~4x and ~3x wins respectively).
  ``wire_roundtrip/*`` and ``socket_round/*`` ids are informational only —
  a socket round being slower than a threaded round is expected physics;
* the PR9 screening gate: for every ``byzantine_screen/k<K>_byz<B>`` pair
  at ``K >= 64`` the ``screen`` path (dual-codeword membership pass +
  syndrome localization + erasure decode of the survivors) must be
  *strictly faster* than the ``redecode`` path (Berlekamp–Welch
  error-correcting decode of the same corrupted results). The win is
  structural: screening replaces the error-correcting solve with one
  O(R·width) inner product and a t×t Hankel solve;
* the PR10 churn gate: for every ``churn_recover/<case>`` triple the
  ``autopilot`` run (adaptive-(K, T) retuning from smoothed churn rates)
  must not lose to the ``static`` run under the same churn schedule
  (``NOT_WORSE_TOLERANCE`` applies; the committed capture shows the
  autopilot winning by avoiding parked re-dispatches). The ``quiet`` leg
  of each triple is informational — it prices the churn itself.

With ``--baseline NAME=PATH`` (repeatable) the script also renders a
markdown trajectory table comparing the current run against the committed
``BENCH_PR*.json`` captures for every shared bench id, and appends it to
``$GITHUB_STEP_SUMMARY`` when that variable is set (the CI job summary).

CI uploads the JSON as an artifact so perf history is inspectable per run.

Usage:
    cargo bench ... | tee bench.log
    python3 scripts/bench_regression.py bench.log --out bench_summary.json \\
        --baseline PR2=BENCH_PR2.json --baseline PR3=BENCH_PR3.json
"""

import argparse
import json
import os
import re
import sys

BENCH_LINE = re.compile(
    r"^bench: (?P<id>\S+) \.\.\. median (?P<ns>[0-9.]+) ns/iter \((?P<iters>\d+) iters\)"
)
PAIR = re.compile(r"^(?P<group>(?:encode|decode)_f64)/k(?P<k>\d+)/(?P<path>matrix|ntt)$")
MONT_PAIR = re.compile(
    r"^(?P<group>(?:pow|inverse)_chain/p251)/len(?P<len>\d+)/(?P<path>barrett|montgomery)$"
)
POOL_PAIR = re.compile(r"^(?P<group>mat_mat_512/p\d+)/(?P<path>serial|pooled)$")
LANE_PAIR = re.compile(
    r"^(?P<group>dot_lanes/p\d+)/len(?P<len>\d+)/(?P<path>scalar|vectorized)$"
)
# Straggler decode: k<K> doubles as the gate's size key (the `len` group).
STRAGGLER_PAIR = re.compile(
    r"^(?P<group>decode_straggler)/k(?P<len>\d+)_miss\d+/(?P<path>dense|tree)$"
)
SERVING_PAIR = re.compile(
    r"^(?P<group>serving)/jobs(?P<len>\d+)_fleet\d+/(?P<path>synchronous|pipelined)$"
)
AUTOTUNE_PAIR = re.compile(
    r"^(?P<group>chunk_autotune)/\d+x\d+/(?P<path>fixed8|auto)$"
)
BATCHED_PAIR = re.compile(
    r"^(?P<group>batched_matmul)/m(?P<len>\d+)/(?P<path>independent|shared)$"
)
WIRE_CRC_PAIR = re.compile(
    r"^(?P<group>wire_crc)/n(?P<len>\d+)/(?P<path>bytewise|sliced)$"
)
WIRE_ENCODE_PAIR = re.compile(
    r"^(?P<group>wire_encode)/n(?P<len>\d+)/(?P<path>element|bulk)$"
)
SCREEN_PAIR = re.compile(
    r"^(?P<group>byzantine_screen)/k(?P<len>\d+)_byz(?P<byz>\d+)/(?P<path>redecode|screen)$"
)
CHURN_PAIR = re.compile(
    r"^(?P<group>churn_recover)/\w+/(?P<path>static|autopilot)$"
)
MIN_GATED_K = 64
MIN_GATED_CHAIN = 64
MIN_GATED_DOT_LEN = 4096
# "Must not lose" gates tie on hosts where the win is structurally
# unavailable (a 1-core runner cannot show a pool speedup); allow this much
# run-to-run noise before calling a tie a loss.
NOT_WORSE_TOLERANCE = 1.10
# The PR6 serving gate's minimum pipelined-over-synchronous speedup with
# >= MIN_GATED_JOBS concurrent jobs on a fixed-width fleet.
SERVING_MIN_SPEEDUP = 1.3
MIN_GATED_JOBS = 4
# The PR7 batched-matmul gate: serving m >= MIN_GATED_FUNCTIONS functions
# over one shared encoded dataset must beat m independently-encoded jobs by
# at least this much (the shared path pays 1 encode, 1 key generation and 1
# Lagrange-basis interpolation where the independent path pays m of each).
BATCHED_MIN_SPEEDUP = 2.0
MIN_GATED_FUNCTIONS = 8


def parse(lines):
    results = {}
    for line in lines:
        match = BENCH_LINE.match(line.strip())
        if match:
            results[match.group("id")] = float(match.group("ns"))
    return results


def gate(results):
    """Returns (checks, failures) for the matrix-vs-NTT pairs at K >= 64."""
    pairs = {}
    for bench_id in results:
        match = PAIR.match(bench_id)
        if match and int(match.group("k")) >= MIN_GATED_K:
            key = (match.group("group"), int(match.group("k")))
            pairs.setdefault(key, {})[match.group("path")] = results[bench_id]
    checks, failures = [], []
    for (group, k), paths in sorted(pairs.items()):
        if "matrix" not in paths or "ntt" not in paths:
            failures.append(f"{group}/k{k}: missing one side of the matrix/ntt pair")
            continue
        speedup = paths["matrix"] / paths["ntt"]
        check = {
            "pair": f"{group}/k{k}",
            "matrix_ns": paths["matrix"],
            "ntt_ns": paths["ntt"],
            "speedup": round(speedup, 2),
            "ok": paths["ntt"] < paths["matrix"],
        }
        checks.append(check)
        if not check["ok"]:
            failures.append(
                f"{group}/k{k}: ntt path ({paths['ntt']:.0f} ns) is not faster "
                f"than the matrix path ({paths['matrix']:.0f} ns)"
            )
    if not checks:
        failures.append("no encode_f64/decode_f64 matrix-vs-ntt pairs found in bench output")
    return checks, failures


def gate_montgomery(results):
    """Returns (checks, failures) for barrett-vs-montgomery chains >= 64."""
    pairs = {}
    for bench_id in results:
        match = MONT_PAIR.match(bench_id)
        if match and int(match.group("len")) >= MIN_GATED_CHAIN:
            key = (match.group("group"), int(match.group("len")))
            pairs.setdefault(key, {})[match.group("path")] = results[bench_id]
    checks, failures = [], []
    for (group, length), paths in sorted(pairs.items()):
        if "barrett" not in paths or "montgomery" not in paths:
            failures.append(
                f"{group}/len{length}: missing one side of the barrett/montgomery pair"
            )
            continue
        speedup = paths["barrett"] / paths["montgomery"]
        check = {
            "pair": f"{group}/len{length}",
            "barrett_ns": paths["barrett"],
            "montgomery_ns": paths["montgomery"],
            "speedup": round(speedup, 2),
            "ok": paths["montgomery"] < paths["barrett"],
        }
        checks.append(check)
        if not check["ok"]:
            failures.append(
                f"{group}/len{length}: montgomery path ({paths['montgomery']:.0f} ns) "
                f"is not faster than the barrett path ({paths['barrett']:.0f} ns)"
            )
    if not checks:
        failures.append(
            "no pow_chain/inverse_chain barrett-vs-montgomery pairs found in bench output"
        )
    return checks, failures


def gate_not_worse(results, pattern, fast_path, slow_path, min_len=None, label=""):
    """Generic "must not lose" gate: for every matched (group[, len]) pair the
    fast path must satisfy fast <= slow * NOT_WORSE_TOLERANCE."""
    pairs = {}
    for bench_id in results:
        match = pattern.match(bench_id)
        if not match:
            continue
        groups = match.groupdict()
        if min_len is not None and int(groups.get("len", 0)) < min_len:
            continue
        key = bench_id.rsplit("/", 1)[0]
        pairs.setdefault(key, {})[groups["path"]] = results[bench_id]
    checks, failures = [], []
    for key, paths in sorted(pairs.items()):
        if fast_path not in paths or slow_path not in paths:
            failures.append(f"{key}: missing one side of the {slow_path}/{fast_path} pair")
            continue
        speedup = paths[slow_path] / paths[fast_path]
        ok = paths[fast_path] <= paths[slow_path] * NOT_WORSE_TOLERANCE
        check = {
            "pair": key,
            f"{slow_path}_ns": paths[slow_path],
            f"{fast_path}_ns": paths[fast_path],
            "speedup": round(speedup, 2),
            "ok": ok,
        }
        checks.append(check)
        if not ok:
            failures.append(
                f"{key}: {fast_path} path ({paths[fast_path]:.0f} ns) loses to the "
                f"{slow_path} path ({paths[slow_path]:.0f} ns) beyond the "
                f"{NOT_WORSE_TOLERANCE:.2f}x noise tolerance"
            )
    if not checks:
        failures.append(f"no {label or pattern.pattern} pairs found in bench output")
    return checks, failures


def gate_serving(results):
    """Returns (checks, failures) for the pipelined-vs-synchronous serving
    pairs at >= MIN_GATED_JOBS concurrent jobs: the pipelined schedule must
    win by at least SERVING_MIN_SPEEDUP."""
    pairs = {}
    for bench_id in results:
        match = SERVING_PAIR.match(bench_id)
        if match and int(match.group("len")) >= MIN_GATED_JOBS:
            key = bench_id.rsplit("/", 1)[0]
            pairs.setdefault(key, {})[match.group("path")] = results[bench_id]
    checks, failures = [], []
    for key, paths in sorted(pairs.items()):
        if "synchronous" not in paths or "pipelined" not in paths:
            failures.append(
                f"{key}: missing one side of the synchronous/pipelined pair"
            )
            continue
        speedup = paths["synchronous"] / paths["pipelined"]
        ok = speedup >= SERVING_MIN_SPEEDUP
        check = {
            "pair": key,
            "synchronous_ns": paths["synchronous"],
            "pipelined_ns": paths["pipelined"],
            "speedup": round(speedup, 2),
            "ok": ok,
        }
        checks.append(check)
        if not ok:
            failures.append(
                f"{key}: pipelined schedule ({paths['pipelined']:.0f} ns) beats the "
                f"synchronous schedule ({paths['synchronous']:.0f} ns) only "
                f"{speedup:.2f}x, below the required {SERVING_MIN_SPEEDUP:.1f}x"
            )
    if not checks:
        failures.append(
            "no serving synchronous-vs-pipelined pairs found in bench output"
        )
    return checks, failures


def gate_batched(results):
    """Returns (checks, failures) for the shared-vs-independent batched
    matmul pairs: shared must never lose (any m, with the usual noise
    tolerance) and must win by at least BATCHED_MIN_SPEEDUP once the batch
    reaches MIN_GATED_FUNCTIONS functions."""
    pairs = {}
    for bench_id in results:
        match = BATCHED_PAIR.match(bench_id)
        if match:
            key = (bench_id.rsplit("/", 1)[0], int(match.group("len")))
            pairs.setdefault(key, {})[match.group("path")] = results[bench_id]
    checks, failures = [], []
    for (key, functions), paths in sorted(pairs.items()):
        if "independent" not in paths or "shared" not in paths:
            failures.append(f"{key}: missing one side of the independent/shared pair")
            continue
        speedup = paths["independent"] / paths["shared"]
        strict = functions >= MIN_GATED_FUNCTIONS
        if strict:
            ok = speedup >= BATCHED_MIN_SPEEDUP
        else:
            ok = paths["shared"] <= paths["independent"] * NOT_WORSE_TOLERANCE
        check = {
            "pair": key,
            "independent_ns": paths["independent"],
            "shared_ns": paths["shared"],
            "speedup": round(speedup, 2),
            "ok": ok,
        }
        checks.append(check)
        if not ok:
            if strict:
                failures.append(
                    f"{key}: shared-encode path ({paths['shared']:.0f} ns) beats the "
                    f"independent path ({paths['independent']:.0f} ns) only "
                    f"{speedup:.2f}x, below the required {BATCHED_MIN_SPEEDUP:.1f}x"
                )
            else:
                failures.append(
                    f"{key}: shared-encode path ({paths['shared']:.0f} ns) loses to "
                    f"the independent path ({paths['independent']:.0f} ns) beyond "
                    f"the {NOT_WORSE_TOLERANCE:.2f}x noise tolerance"
                )
    if not checks:
        failures.append(
            "no batched_matmul independent-vs-shared pairs found in bench output"
        )
    return checks, failures


def gate_screen(results):
    """Returns (checks, failures) for the screen-vs-redecode pairs at
    K >= MIN_GATED_K: the dual-codeword screen must be strictly faster than
    Berlekamp-Welch detect-and-redecode for every Byzantine count."""
    pairs = {}
    for bench_id in results:
        match = SCREEN_PAIR.match(bench_id)
        if match and int(match.group("len")) >= MIN_GATED_K:
            key = bench_id.rsplit("/", 1)[0]
            pairs.setdefault(key, {})[match.group("path")] = results[bench_id]
    checks, failures = [], []
    for key, paths in sorted(pairs.items()):
        if "redecode" not in paths or "screen" not in paths:
            failures.append(f"{key}: missing one side of the redecode/screen pair")
            continue
        speedup = paths["redecode"] / paths["screen"]
        ok = paths["screen"] < paths["redecode"]
        check = {
            "pair": key,
            "redecode_ns": paths["redecode"],
            "screen_ns": paths["screen"],
            "speedup": round(speedup, 2),
            "ok": ok,
        }
        checks.append(check)
        if not ok:
            failures.append(
                f"{key}: screen path ({paths['screen']:.0f} ns) is not strictly "
                f"faster than the redecode path ({paths['redecode']:.0f} ns)"
            )
    if not checks:
        failures.append(
            "no byzantine_screen redecode-vs-screen pairs found in bench output"
        )
    return checks, failures


def load_baselines(specs):
    """Parses repeated NAME=PATH specs into [(name, {bench_id: ns})]."""
    baselines = []
    for spec in specs or []:
        name, _, path = spec.partition("=")
        if not path:
            raise SystemExit(f"--baseline wants NAME=PATH, got {spec!r}")
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        baselines.append((name, data.get("results_ns_per_iter", {})))
    return baselines


def trajectory_table(results, baselines):
    """Markdown table of every bench id shared with at least one baseline:
    one column per baseline capture, one for the current run, and the
    speedup of the current run over the oldest capture that has the id."""
    ids = sorted(
        bench_id
        for bench_id in results
        if any(bench_id in base for _, base in baselines)
    )
    if not ids:
        return None
    header = (
        "| bench | "
        + " | ".join(f"{name} ns" for name, _ in baselines)
        + " | current ns | vs oldest |"
    )
    divider = "|" + "---|" * (len(baselines) + 3)
    rows = [header, divider]
    for bench_id in ids:
        cells = [f"`{bench_id}`"]
        oldest = None
        for _, base in baselines:
            value = base.get(bench_id)
            cells.append(f"{value:.0f}" if value is not None else "—")
            if oldest is None and value is not None:
                oldest = value
        current = results[bench_id]
        cells.append(f"{current:.0f}")
        cells.append(f"{oldest / current:.2f}x" if oldest else "—")
        rows.append("| " + " | ".join(cells) + " |")
    return "\n".join(rows)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log", nargs="?", help="bench output file (defaults to stdin)")
    parser.add_argument("--out", help="write the JSON summary here")
    parser.add_argument(
        "--baseline",
        action="append",
        metavar="NAME=PATH",
        help="committed BENCH_*.json capture to diff against (repeatable)",
    )
    args = parser.parse_args()

    if args.log:
        with open(args.log, encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = sys.stdin.readlines()

    results = parse(lines)
    ntt_checks, ntt_failures = gate(results)
    mont_checks, mont_failures = gate_montgomery(results)
    pool_checks, pool_failures = gate_not_worse(
        results, POOL_PAIR, "pooled", "serial", label="mat_mat_512 serial-vs-pooled"
    )
    lane_checks, lane_failures = gate_not_worse(
        results,
        LANE_PAIR,
        "vectorized",
        "scalar",
        min_len=MIN_GATED_DOT_LEN,
        label="dot_lanes scalar-vs-vectorized",
    )
    # The PR5 gate: with workers missing at K >= 64 the subproduct-tree
    # partial decode must not lose to the dense Lagrange combination (it
    # wins 1.6-2.4x on the committed capture; "not worse" keeps the gate
    # robust to noisy smoke hosts).
    straggler_checks, straggler_failures = gate_not_worse(
        results,
        STRAGGLER_PAIR,
        "tree",
        "dense",
        min_len=MIN_GATED_K,
        label="decode_straggler dense-vs-tree",
    )
    # The PR6 gates: the pipelined serving schedule must win outright, and
    # the autotuned kernel fan-out must not lose to the fixed 8-way split.
    serving_checks, serving_failures = gate_serving(results)
    autotune_checks, autotune_failures = gate_not_worse(
        results,
        AUTOTUNE_PAIR,
        "auto",
        "fixed8",
        label="chunk_autotune fixed8-vs-auto",
    )
    # The PR7 gate: one shared encode serving m functions must beat m
    # independent encodes — strictly (2x) at m >= 8, never-worse below.
    batched_checks, batched_failures = gate_batched(results)
    # The PR8 gates: the slicing-by-8 CRC kernel and the bulk element
    # serializer pay for every socket frame, both directions — neither may
    # regress to its reference implementation.
    wire_crc_checks, wire_crc_failures = gate_not_worse(
        results, WIRE_CRC_PAIR, "sliced", "bytewise", label="wire_crc bytewise-vs-sliced"
    )
    wire_encode_checks, wire_encode_failures = gate_not_worse(
        results, WIRE_ENCODE_PAIR, "bulk", "element", label="wire_encode element-vs-bulk"
    )
    # The PR9 gate: pre-decode dual-codeword screening must strictly beat
    # Berlekamp-Welch detect-and-redecode at K >= 64 under 1-3 Byzantine
    # workers.
    screen_checks, screen_failures = gate_screen(results)
    # The PR10 gate: under the same churn schedule the adaptive-(K, T)
    # autopilot must not lose to the static (reactive-controller)
    # configuration. The autopilot's win — retuning the code down before the
    # fleet drops below threshold, so no round parks — shrinks with the
    # sleep scale, hence not-worse rather than a strict-speedup gate. The
    # `churn_recover/*/quiet` id is informational (what the churn costs).
    churn_checks, churn_failures = gate_not_worse(
        results, CHURN_PAIR, "autopilot", "static", label="churn_recover static-vs-autopilot"
    )
    failures = (
        ntt_failures
        + mont_failures
        + pool_failures
        + lane_failures
        + straggler_failures
        + serving_failures
        + autotune_failures
        + batched_failures
        + wire_crc_failures
        + wire_encode_failures
        + screen_failures
        + churn_failures
    )
    summary = {
        "results_ns_per_iter": results,
        "ntt_regression_checks": ntt_checks,
        "montgomery_chain_checks": mont_checks,
        "pool_mat_mat_checks": pool_checks,
        "dot_lane_checks": lane_checks,
        "straggler_decode_checks": straggler_checks,
        "serving_pipeline_checks": serving_checks,
        "chunk_autotune_checks": autotune_checks,
        "batched_matmul_checks": batched_checks,
        "wire_crc_checks": wire_crc_checks,
        "wire_encode_checks": wire_encode_checks,
        "byzantine_screen_checks": screen_checks,
        "churn_recover_checks": churn_checks,
        "ok": not failures,
    }
    rendered = json.dumps(summary, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    print(rendered)

    baselines = load_baselines(args.baseline)
    if baselines:
        table = trajectory_table(results, baselines)
        if table:
            document = "## Bench trajectory vs committed baselines\n\n" + table + "\n"
            print(document)
            step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
            if step_summary:
                with open(step_summary, "a", encoding="utf-8") as handle:
                    handle.write(document)
        else:
            print("(no bench ids shared with the provided baselines)")

    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
