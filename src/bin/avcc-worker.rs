//! The AVCC worker process: connects back to a master, completes the wire
//! handshake and serves `LOAD_BLOCK`/`TASK` frames until told to shut down.
//!
//! Usage (spawned by `avcc_sim::SocketExecutor`, but runnable by hand):
//!
//! ```text
//! avcc-worker --connect tcp:127.0.0.1:4100 --worker 3
//! avcc-worker --connect uds:/tmp/avcc-master-1234-0.sock --worker 3
//! ```
//!
//! The protocol (including this binary's exact frame sequence) is specified
//! in `docs/WIRE_FORMAT.md`.

use std::net::TcpStream;
use std::process::ExitCode;

use avcc_sim::wire::{serve_connection, WorkerOptions};

fn usage() -> ExitCode {
    eprintln!("usage: avcc-worker --connect tcp:HOST:PORT|uds:PATH --worker INDEX");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut connect: Option<String> = None;
    let mut worker: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => connect = args.next(),
            "--worker" => worker = args.next().and_then(|v| v.parse().ok()),
            _ => return usage(),
        }
    }
    let (Some(connect), Some(worker)) = (connect, worker) else {
        return usage();
    };

    let options = WorkerOptions::default();
    let result = if let Some(addr) = connect.strip_prefix("tcp:") {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                serve_connection(stream, worker, &options)
            }
            Err(e) => {
                eprintln!("avcc-worker {worker}: connect {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(path) = connect.strip_prefix("uds:") {
        #[cfg(unix)]
        {
            match std::os::unix::net::UnixStream::connect(path) {
                Ok(stream) => serve_connection(stream, worker, &options),
                Err(e) => {
                    eprintln!("avcc-worker {worker}: connect {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        #[cfg(not(unix))]
        {
            eprintln!("avcc-worker {worker}: unix sockets unsupported here ({path})");
            return ExitCode::FAILURE;
        }
    } else {
        return usage();
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // A master tearing the connection down (eviction, kill) is the
            // expected end of life for a worker mid-fault-test; report it but
            // exit nonzero so an unexpected death is visible in CI logs.
            eprintln!("avcc-worker {worker}: {e}");
            ExitCode::FAILURE
        }
    }
}
