//! # AVCC — Adaptive Verifiable Coded Computing
//!
//! A from-scratch Rust reproduction of *"Adaptive Verifiable Coded Computing:
//! Towards Fast, Secure and Private Distributed Machine Learning"*
//! (Tang et al., IPDPS 2022).
//!
//! AVCC runs distributed polynomial computations (the flagship workload is
//! logistic-regression training) on a cluster where some workers straggle,
//! some are Byzantine and some may collude to learn the data. It combines:
//!
//! * **coded computing** (MDS / Lagrange coding) for straggler tolerance and
//!   information-theoretic privacy,
//! * **verifiable computing** (Freivalds' algorithm) to detect Byzantine
//!   workers at a per-result cost of `O(m + d)` instead of doubling the coded
//!   redundancy, and
//! * **dynamic coding** that re-balances straggler vs Byzantine tolerance at
//!   run time.
//!
//! This meta-crate re-exports all sub-crates. See `DESIGN.md` for the system
//! inventory, `EXPERIMENTS.md` for the paper-vs-measured comparison and the
//! `examples/` directory for runnable entry points.
//!
//! ## Quickstart
//!
//! ```
//! use avcc::core::{run_experiment, ExperimentConfig, FaultScenario, SchemeKind};
//! use avcc::field::P25;
//! use avcc::ml::dataset::DatasetConfig;
//! use avcc::sim::attack::AttackModel;
//!
//! // One Byzantine worker mounting the constant attack, one straggler.
//! let scenario = FaultScenario::paper(1, 1, AttackModel::constant());
//! let mut config = ExperimentConfig::paper_avcc(2, 1, scenario);
//! config.iterations = 5; // keep the doctest fast
//! config.dataset = DatasetConfig {
//!     train_samples: 180,
//!     test_samples: 60,
//!     features: 27,
//!     informative: 9,
//!     ..DatasetConfig::default()
//! };
//! let report = run_experiment::<P25>(&config).unwrap();
//! assert_eq!(report.scheme, SchemeKind::Avcc.label());
//! assert!(report.total_detections() > 0); // the Byzantine worker was caught
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prime-field arithmetic, signed embedding and quantization.
pub use avcc_field as field;

/// Polynomials, Lagrange interpolation and Reed–Solomon decoding.
pub use avcc_poly as poly;

/// Dense matrices and multi-threaded kernels.
pub use avcc_linalg as linalg;

/// MDS / Lagrange coded computing.
pub use avcc_coding as coding;

/// Freivalds verifiable computing.
pub use avcc_verify as verify;

/// The distributed-cluster substrate (latency, stragglers, attacks, costs).
pub use avcc_sim as sim;

/// The logistic-regression workload and quantized two-round protocol.
pub use avcc_ml as ml;

/// The AVCC framework: schemes, adaptive coding, training driver, reports.
pub use avcc_core as core;

/// The pipelined multi-job serving layer (fleet, scheduler, admission).
pub use avcc_serve as serve;
