//! Quickstart: train a distributed logistic-regression model with AVCC on a
//! simulated 12-worker cluster with one straggler and one Byzantine worker,
//! and compare it against the LCC and uncoded baselines.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use avcc::core::report::speedup;
use avcc::core::{run_experiment, ExperimentConfig, FaultScenario, SchemeKind};
use avcc::field::P25;
use avcc::sim::attack::AttackModel;

fn main() {
    // One straggler and one Byzantine worker mounting the constant attack —
    // the conditions of the paper's Fig. 3(c).
    let scenario = FaultScenario::paper(2, 1, AttackModel::constant());

    println!("scheme      final-acc  best-acc   total-time[s]  detections");
    println!("-----------------------------------------------------------");
    let mut reports = Vec::new();
    for (label, config) in [
        ("uncoded", ExperimentConfig::paper_uncoded(scenario.clone())),
        ("lcc", ExperimentConfig::paper_lcc(scenario.clone())),
        ("avcc", ExperimentConfig::paper_avcc(2, 1, scenario.clone())),
    ] {
        let report = run_experiment::<P25>(&config).expect("experiment failed");
        println!(
            "{label:<11} {:>8.3}  {:>8.3}   {:>12.2}  {:>10}",
            report.final_accuracy(),
            report.best_accuracy(),
            report.total_seconds(),
            report.total_detections()
        );
        reports.push((label, report));
    }

    let avcc = &reports.iter().find(|(l, _)| *l == "avcc").unwrap().1;
    let lcc = &reports.iter().find(|(l, _)| *l == "lcc").unwrap().1;
    let uncoded = &reports.iter().find(|(l, _)| *l == "uncoded").unwrap().1;
    let target = 0.85;
    println!();
    println!(
        "speedup of {} over LCC at {:.0}% accuracy:      {:.2}x",
        SchemeKind::Avcc.label(),
        target * 100.0,
        speedup(avcc, lcc, target)
    );
    println!(
        "speedup of {} over uncoded at {:.0}% accuracy:  {:.2}x",
        SchemeKind::Avcc.label(),
        target * 100.0,
        speedup(avcc, uncoded, target)
    );
}
