//! Dynamic re-coding (the paper's Fig. 5 scenario).
//!
//! The run starts with a `(N = 12, K = 9, S = 2, M = 1)` configuration. At
//! iteration 1 three stragglers and one Byzantine worker appear — more than
//! the code can absorb. AVCC evicts the detected Byzantine node and re-encodes
//! to `(11, 8)`, paying a one-time re-distribution cost; Static VCC keeps the
//! original code and pays straggler tail latency on every remaining iteration.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dynamic_recoding
//! ```

use avcc::core::{run_dynamic_coding_scenario, ExperimentConfig, FaultScenario, SchemeKind};
use avcc::field::P25;
use avcc::sim::attack::AttackModel;

fn main() {
    let base_scenario = FaultScenario {
        stragglers: Vec::new(),
        straggler_multiplier: 8.0,
        byzantine: vec![4],
        attack: AttackModel::constant(),
    };

    let mut avcc = ExperimentConfig::paper_avcc(2, 1, base_scenario.clone());
    avcc.iterations = 50;
    let mut static_vcc = avcc.clone();
    static_vcc.scheme = SchemeKind::StaticVcc;

    // Three stragglers appear at iteration 1.
    let onset = 1;
    let stragglers = [0, 1, 2];

    let avcc_report = run_dynamic_coding_scenario::<P25>(&avcc, onset, &stragglers, 8.0)
        .expect("AVCC run failed");
    let static_report = run_dynamic_coding_scenario::<P25>(&static_vcc, onset, &stragglers, 8.0)
        .expect("Static VCC run failed");

    println!("iteration   AVCC cumulative [s]   StaticVCC cumulative [s]");
    println!("----------------------------------------------------------");
    for (a, s) in avcc_report
        .iterations
        .iter()
        .zip(static_report.iterations.iter())
        .step_by(5)
    {
        println!(
            "{:>9}   {:>19.2}   {:>24.2}",
            a.iteration, a.cumulative_seconds, s.cumulative_seconds
        );
    }
    println!();
    println!(
        "AVCC re-encoded {} time(s); one-time reconfiguration cost {:.2} s",
        avcc_report.reconfiguration_count(),
        avcc_report
            .iterations
            .iter()
            .map(|r| r.costs.reconfiguration)
            .sum::<f64>()
    );
    println!(
        "total time: AVCC {:.2} s vs Static VCC {:.2} s (saving {:.2} s over {} iterations)",
        avcc_report.total_seconds(),
        static_report.total_seconds(),
        static_report.total_seconds() - avcc_report.total_seconds(),
        avcc_report.len()
    );
}
