//! Coded matrix–vector multiplication on a *real threaded* cluster.
//!
//! This example exercises the public API at a lower level than the training
//! driver: it reproduces the paper's Fig. 1 workflow — encode a matrix with a
//! systematic `(N, K)` MDS code, hand each share to a worker thread, multiply
//! by a vector, verify each returned result with a Freivalds key and decode
//! from the fastest verified results — using the `ThreadedExecutor`, so the
//! straggler really is an OS thread that finishes late.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example coded_matvec
//! ```

use avcc::coding::MdsCode;
use avcc::field::{F25, P25};
use avcc::linalg::{mat_vec, Matrix};
use avcc::sim::attack::{AttackModel, ByzantineSpec};
use avcc::sim::cluster::ClusterProfile;
use avcc::sim::executor::ThreadedExecutor;
use avcc::verify::{KeyGenConfig, MatVecKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let workers = 12;
    let partitions = 9;

    // A 900 x 63 integer matrix, split into 9 blocks and MDS-encoded into 12.
    let matrix = Matrix::from_vec(900, 63, avcc::field::random_matrix(&mut rng, 900, 63));
    let input: Vec<F25> = avcc::field::random_vector(&mut rng, 63);
    let expected = mat_vec(&matrix, &input);

    let code = MdsCode::<P25>::new(workers, partitions).expect("valid MDS configuration");
    let shares = code.encode_matrix(&matrix);
    println!(
        "encoded {} data blocks into {} coded shares",
        partitions,
        shares.len()
    );

    // One-time Freivalds keys, one per worker.
    let keys: Vec<MatVecKey<P25>> = shares
        .iter()
        .map(|share| MatVecKey::generate(&share.block, KeyGenConfig::default(), &mut rng))
        .collect();

    // Worker 2 is a straggler; worker 5 is Byzantine (reverse-value attack).
    let profile = ClusterProfile::uniform(workers).with_stragglers(&[2], 30.0);
    let byzantine = ByzantineSpec::new([5], AttackModel::reverse());
    let executor = ThreadedExecutor::new(profile);

    let blocks: Vec<_> = shares.iter().map(|s| s.block.clone()).collect();
    let input_ref = &input;
    let tasks: Vec<_> = blocks
        .iter()
        .map(|block| move || mat_vec(block, input_ref))
        .collect();
    let outcomes = executor.run_round(
        tasks,
        |payload: &Vec<F25>| payload.len() * 8,
        |worker, payload: &mut Vec<F25>| byzantine.corrupt(worker, payload),
    );

    // Verify in arrival order, keep the first K verified results.
    let mut verified = Vec::new();
    for outcome in &outcomes {
        if verified.len() >= partitions {
            break;
        }
        if keys[outcome.worker].verify(&input, &outcome.payload) {
            println!(
                "worker {:>2} arrived at {:>7.1} ms: verified",
                outcome.worker,
                outcome.arrival_seconds * 1e3
            );
            verified.push((outcome.worker, outcome.payload.clone()));
        } else {
            println!(
                "worker {:>2} arrived at {:>7.1} ms: REJECTED (Byzantine)",
                outcome.worker,
                outcome.arrival_seconds * 1e3
            );
        }
    }

    let decoded = code
        .decode_concatenated(&verified)
        .expect("enough verified results to decode");
    assert_eq!(decoded, expected);
    println!(
        "decoded X*b correctly from {} verified results (out of {} workers)",
        verified.len(),
        workers
    );
}
