//! Multi-job serving: pipelined vs synchronous scheduling on a shared fleet.
//!
//! Four training jobs — an uncoded baseline and three coded runs with
//! stragglers and a Byzantine worker — are submitted to one [`avcc::serve`]
//! scheduler and run twice on the same four-slot fleet: once with a pipeline
//! depth of four (rounds of different jobs overlap, master-side
//! verify/decode/encode hides inside other jobs' compute) and once
//! synchronously (one job at a time, the paper-style driver loop). The
//! pipelined schedule fills the slot time a synchronous schedule wastes
//! waiting on stragglers and on the master, which shows up directly in the
//! jobs/sec and occupancy numbers — while every job's result stays
//! bit-identical between the two schedules.
//!
//! A second act shows *encode amortization*: eight matvec functions served
//! as one [`JobSpec::MatMulBatch`] (built with the `JobSpec::matmul(...)`
//! builder) against a single shared encoded dataset, versus the same eight
//! functions as independent jobs that each re-encode the matrix. The batch
//! pays one encode, one batched Freivalds pass and reuses one cached
//! Lagrange basis across its decodes — with bit-identical outputs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serving
//! ```

use std::time::Instant;

use avcc::coding::SchemeConfig;
use avcc::core::{ExperimentConfig, FaultScenario, SchemeKind};
use avcc::field::P25;
use avcc::linalg::Matrix;
use avcc::ml::dataset::DatasetConfig;
use avcc::serve::{Fleet, JobOutput, JobSpec, Scheduler, SchedulerConfig};
use avcc::sim::attack::AttackModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A short training job: three iterations on a small synthetic dataset.
fn job(scheme: SchemeKind, stragglers: usize, byzantine: usize, seed: u64) -> ExperimentConfig {
    let attack = if byzantine > 0 {
        AttackModel::constant()
    } else {
        AttackModel::None
    };
    let scenario = FaultScenario::paper(stragglers, byzantine, attack);
    let mut config = match scheme {
        SchemeKind::Uncoded => ExperimentConfig::paper_uncoded(scenario),
        SchemeKind::Lcc => ExperimentConfig::paper_lcc(scenario),
        _ => ExperimentConfig::paper_avcc(2, 1, scenario),
    };
    config.iterations = 3;
    config.time_scale = 1.0;
    config.seed = seed;
    config.dataset = DatasetConfig {
        train_samples: 360,
        test_samples: 120,
        features: 36,
        informative: 12,
        ..DatasetConfig::default()
    };
    config
}

fn run(label: &str, fleet: &Fleet, config: SchedulerConfig) -> avcc::serve::ServingReport<P25> {
    let mut scheduler = Scheduler::<P25>::new(config);
    for spec in [
        job(SchemeKind::Uncoded, 1, 0, 1),
        job(SchemeKind::Avcc, 2, 1, 2),
        job(SchemeKind::Lcc, 1, 1, 3),
        job(SchemeKind::Avcc, 1, 0, 4),
    ] {
        scheduler
            .submit(JobSpec::Training(spec))
            .expect("queue has room");
    }
    let report = scheduler.run(fleet);
    println!(
        "{label:>12}: {} jobs in {:.2}s  ({:.2} jobs/s, {:.2} rounds/s, occupancy {:.0}%, mean queue wait {:.2}s)",
        report.metrics.jobs_completed,
        report.metrics.span_seconds,
        report.metrics.jobs_per_second(),
        report.metrics.rounds_per_second(),
        report.metrics.pipeline_occupancy() * 100.0,
        report.metrics.mean_queue_wait_seconds(),
    );
    report
}

fn main() {
    let fleet = Fleet::new(4);
    println!(
        "serving 4 training jobs on a {}-slot fleet (stragglers sleep for real)\n",
        fleet.width()
    );

    let pipelined = run("pipelined", &fleet, SchedulerConfig::default());
    let synchronous = run("synchronous", &fleet, SchedulerConfig::synchronous());

    // The schedule changes the timing, never the results.
    for (fast, slow) in pipelined.jobs.iter().zip(&synchronous.jobs) {
        let (JobOutput::Training(fast), JobOutput::Training(slow)) = (&fast.output, &slow.output)
        else {
            panic!("all jobs are training jobs");
        };
        assert_eq!(
            fast.final_accuracy(),
            slow.final_accuracy(),
            "schedules must agree on every job's result"
        );
    }

    let speedup = synchronous.metrics.span_seconds / pipelined.metrics.span_seconds.max(1e-9);
    println!("\npipelining speedup on this fleet: {speedup:.2}x (identical results)");

    serve_batched_matmuls(&fleet);
}

/// Encode amortization: one multi-function job vs independent re-encoding
/// jobs, same functions, same fleet, bit-identical outputs.
fn serve_batched_matmuls(fleet: &Fleet) {
    let functions = 8;
    let mut rng = StdRng::seed_from_u64(42);
    let rows = 240;
    let cols = 128;
    let matrix = Matrix::from_vec(
        rows,
        cols,
        avcc::field::random_matrix::<P25, _>(&mut rng, rows, cols),
    );
    let inputs: Vec<Vec<avcc::field::F25>> = (0..functions)
        .map(|_| avcc::field::random_vector(&mut rng, cols))
        .collect();
    let coding = SchemeConfig::linear(12, 8, 2, 1).expect("feasible coding");
    println!("\nserving {functions} matvec functions over one {rows}x{cols} matrix");

    // Independent: every function re-encodes the matrix from scratch.
    let started = Instant::now();
    let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
    for input in &inputs {
        scheduler
            .submit(
                JobSpec::matmul(matrix.clone(), input.clone())
                    .with_scheme(coding)
                    .with_seed(7)
                    .build(),
            )
            .expect("queue has room");
    }
    let independent = scheduler.run(fleet);
    let independent_seconds = started.elapsed().as_secs_f64();

    // Batched: one shared encoded dataset, one batched Freivalds pass.
    let started = Instant::now();
    let mut scheduler = Scheduler::<P25>::new(SchedulerConfig::default());
    let id = scheduler
        .submit(
            JobSpec::matmul(matrix.clone(), inputs[0].clone())
                .with_batch(inputs.clone())
                .with_scheme(coding)
                .with_seed(7)
                .build(),
        )
        .expect("queue has room");
    let batched = scheduler.run(fleet);
    let batched_seconds = started.elapsed().as_secs_f64();

    let JobOutput::MatVecBatch(batch_outputs) = &batched.job(id).unwrap().output else {
        panic!("batched job must produce a MatVecBatch output");
    };
    for (job, batch_output) in independent.jobs.iter().zip(batch_outputs) {
        let JobOutput::MatVec(single) = &job.output else {
            panic!("independent jobs must produce MatVec outputs");
        };
        assert_eq!(single, batch_output, "batching must not change the answer");
    }

    let metrics = &batched.job(id).unwrap().metrics;
    println!(
        "  independent: {independent_seconds:.3}s  ({} encodes)",
        functions
    );
    println!(
        "  batched:     {batched_seconds:.3}s  (1 encode, basis cache {} hits / {} misses)",
        metrics.decode_cache_hits, metrics.decode_cache_misses
    );
    println!(
        "  amortization speedup: {:.2}x (identical outputs)",
        independent_seconds / batched_seconds.max(1e-9)
    );
}
